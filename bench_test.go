package crowder

// This file is the benchmark harness of deliverable (d): one testing.B
// benchmark per table and figure of the paper's evaluation (Section 7),
// plus the ablations DESIGN.md calls out and micro-benchmarks of the core
// algorithms. Each experiment benchmark executes the same driver that
// `cmd/experiments` uses to print the paper's rows/series; run
//
//	go test -bench=. -benchmem
//
// for timings, and `go run ./cmd/experiments` for the regenerated tables.

import (
	"sync"
	"testing"

	"github.com/crowder/crowder/internal/aggregate"
	"github.com/crowder/crowder/internal/dataset"
	"github.com/crowder/crowder/internal/experiments"
	"github.com/crowder/crowder/internal/hitgen"
	"github.com/crowder/crowder/internal/packing"
	"github.com/crowder/crowder/internal/record"
	"github.com/crowder/crowder/internal/simjoin"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
)

// env builds the shared experimental environment once, outside any
// benchmark timing loop, and pre-warms the similarity-join cache so the
// benchmarks measure the experiment driver, not dataset generation.
func env(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchEnv = experiments.NewEnv(1)
	})
	return benchEnv
}

// --- Table 2: likelihood-threshold selection -------------------------------

func BenchmarkTable2Restaurant(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := e.Table2(e.Restaurant); len(r.Rows) != 6 {
			b.Fatal("bad Table 2 result")
		}
	}
}

func BenchmarkTable2Product(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := e.Table2(e.Product); len(r.Rows) != 6 {
			b.Fatal("bad Table 2 result")
		}
	}
}

// --- Figure 10: #HITs vs likelihood threshold ------------------------------

func BenchmarkFigure10Restaurant(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Figure10(e.Restaurant); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10Product(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Figure10(e.Product); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 11: #HITs vs cluster-size threshold ----------------------------

func BenchmarkFigure11Restaurant(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Figure11(e.Restaurant); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure11Product(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Figure11(e.Product); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 12: PR curves of the four ER techniques ------------------------

func BenchmarkFigure12Restaurant(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Figure12(e.Restaurant, 0.35, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure12Product(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Figure12(e.Product, 0.2, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures 13/14/15: pair-based vs cluster-based HITs --------------------

func BenchmarkFigure13to15Product(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.PairVsCluster(e.Product, 0.2, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure13to15ProductDup(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.PairVsCluster(e.ProductDup, 0.2, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §4) ----------------------------------------------

func BenchmarkAblationPacking(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.AblationPacking(e.Restaurant); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSeed(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.AblationSeed(e.Restaurant); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTieBreak(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.AblationTieBreak(e.Restaurant); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationEM(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.AblationEM(e.Restaurant, 0.35, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of the core algorithms --------------------------------

func BenchmarkSimJoinRestaurant(b *testing.B) {
	d := dataset.Restaurant(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		simjoin.Join(d.Table, simjoin.Options{Threshold: 0.3})
	}
}

func benchPairs(b *testing.B, tau float64) []record.Pair {
	b.Helper()
	d := dataset.Restaurant(1)
	return simjoin.Pairs(simjoin.Join(d.Table, simjoin.Options{Threshold: tau}))
}

func BenchmarkTwoTieredGenerate(b *testing.B) {
	pairs := benchPairs(b, 0.2)
	gen := hitgen.TwoTiered{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Generate(pairs, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApproxGenerate(b *testing.B) {
	pairs := benchPairs(b, 0.2)
	gen := hitgen.Approx{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Generate(pairs, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBFSGenerate(b *testing.B) {
	pairs := benchPairs(b, 0.2)
	gen := hitgen.BFS{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Generate(pairs, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPackingSolve(b *testing.B) {
	sizes := make([]int, 500)
	for i := range sizes {
		sizes[i] = 1 + i%10
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := packing.Solve(sizes, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDawidSkene(b *testing.B) {
	// 3 workers × 2000 pairs of synthetic answers.
	var answers []aggregate.Answer
	for i := 0; i < 2000; i++ {
		p := record.MakePair(record.ID(2*i), record.ID(2*i+1))
		for w := 0; w < 3; w++ {
			answers = append(answers, aggregate.Answer{
				Pair: p, Worker: w, Match: (i+w)%3 == 0,
			})
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		aggregate.DawidSkene(answers, aggregate.DawidSkeneOptions{})
	}
}

func BenchmarkResolveTable1(b *testing.B) {
	tab, oracle := paperTable()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Resolve(tab, Options{
			Threshold: 0.3, ClusterSize: 4, Oracle: oracle, Seed: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionActiveVsHybrid(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ActiveVsHybrid(e.Restaurant, 0.35, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionScale(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Scale([]int{858, 1716}, 0.2, 300); err != nil {
			b.Fatal(err)
		}
	}
}
