package crowder

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/crowder/crowder/internal/record"
	"github.com/crowder/crowder/internal/verdicts"
)

// shardedEqualityOptions is the configuration the cross-shard-count
// equality tests resolve under: transitivity on, so deduction proofs and
// witness provenance are part of the compared state, and a clean worker
// pool, so every verdict is a pure function of (Seed, pair).
func shardedEqualityOptions(oracle []Pair, shards int) Options {
	return Options{
		Threshold:    0.4,
		HITType:      PairHITs,
		ClusterSize:  10,
		Oracle:       oracle,
		Seed:         1,
		SpammerRate:  NoSpammers,
		Transitivity: TransitivityOn,
		Shards:       shards,
	}
}

// assertSameCache compares two sessions' verdict caches entry by entry:
// same pairs, same provenance, same posteriors and likelihoods, and —
// for deduced pairs — identical proofs (path, witness, polarity). This
// is the "internal/verdicts replays identically" half of the sharding
// contract: not just the same matches, but the same evidence.
func assertSameCache(t *testing.T, label string, want, got *verdicts.Cache) {
	t.Helper()
	wantPairs, gotPairs := want.Pairs(), got.Pairs()
	if !reflect.DeepEqual(wantPairs, gotPairs) {
		t.Fatalf("%s: cache holds %d pairs, want %d", label, len(gotPairs), len(wantPairs))
	}
	if want.DeducedLen() != got.DeducedLen() {
		t.Fatalf("%s: %d deduced pairs, want %d", label, got.DeducedLen(), want.DeducedLen())
	}
	for _, p := range wantPairs {
		we, ge := want.Get(p), got.Get(p)
		if we.Provenance != ge.Provenance {
			t.Fatalf("%s: pair %v is %v, want %v", label, p, ge.Provenance, we.Provenance)
		}
		if we.Posterior != ge.Posterior || we.Likelihood != ge.Likelihood {
			t.Fatalf("%s: pair %v posterior/likelihood %v/%v, want %v/%v",
				label, p, ge.Posterior, ge.Likelihood, we.Posterior, we.Likelihood)
		}
		if !reflect.DeepEqual(we.Answers, ge.Answers) {
			t.Fatalf("%s: pair %v answers differ", label, p)
		}
		if !reflect.DeepEqual(we.Deduction, ge.Deduction) {
			t.Fatalf("%s: pair %v proof differs:\n got %+v\nwant %+v",
				label, p, ge.Deduction, we.Deduction)
		}
	}
}

// Tentpole acceptance: resolutions are bit-identical at every shard
// count — matches, verdict-cache contents and deduction proofs — both
// from scratch and through a k-batch incremental session. Product+Dup
// is the clique-rich workload (duplicate cliques of up to 10), so a
// large fraction of the compared verdicts are transitive deductions
// with proofs, not just crowd answers.
func TestShardedResolutionBitIdentical(t *testing.T) {
	rows, schema, oracle, _ := productDupDataset()

	resolveScratch := func(shards int) (*Resolver, *Result) {
		opts := shardedEqualityOptions(oracle, shards)
		opts.Threshold = 0.5
		rv, err := NewResolver(NewTable(schema...), opts)
		if err != nil {
			t.Fatal(err)
		}
		rv.AppendBatch(rows...)
		res, err := rv.ResolveDelta()
		if err != nil {
			t.Fatal(err)
		}
		return rv, res
	}

	baseline, baseRes := resolveScratch(0)
	if len(baseRes.Matches) == 0 {
		t.Fatal("baseline resolution produced no matches")
	}
	if baseRes.DeducedPairs == 0 {
		t.Fatal("baseline resolution deduced nothing; the proof comparison is vacuous")
	}

	for _, shards := range []int{1, 2, 4, 8} {
		rv, res := resolveScratch(shards)
		label := "scratch"
		assertSameMatches(t, label, baseRes.Matches, res.Matches)
		assertSameCache(t, label, baseline.cache, rv.cache)
		if res.HITs != baseRes.HITs || res.DeducedPairs != baseRes.DeducedPairs {
			t.Fatalf("shards=%d: %d HITs / %d deduced, want %d / %d", shards,
				res.HITs, res.DeducedPairs, baseRes.HITs, baseRes.DeducedPairs)
		}

		// k-batch incremental session at the same shard count.
		incOpts := shardedEqualityOptions(oracle, shards)
		incOpts.Threshold = 0.5
		inc, err := NewResolver(NewTable(schema...), incOpts)
		if err != nil {
			t.Fatal(err)
		}
		var last *Result
		const batches = 3
		size := (len(rows) + batches - 1) / batches
		for lo := 0; lo < len(rows); lo += size {
			hi := min(lo+size, len(rows))
			inc.AppendBatch(rows[lo:hi]...)
			if last, err = inc.ResolveDelta(); err != nil {
				t.Fatal(err)
			}
		}
		assertSameMatches(t, "k-batch", baseRes.Matches, last.Matches)
		assertSameCache(t, "k-batch", baseline.cache, inc.cache)
	}
}

// Satellite: session reads proceed during a resolve. A queue-backed
// sharded resolution blocks on the crowd; while it waits, Verdict,
// JudgedPairs, WorkerStats, PendingPairs, Record and Len must all answer
// from the shared lock instead of queueing behind the job. Run under
// -race (the module race job does): the assertions here are secondary to
// the interleaving itself.
func TestResolverReadsDuringResolve(t *testing.T) {
	rows, schema, oracle := resolverDataset(7, 120, 24)
	truth := map[Pair]bool{}
	for _, p := range oracle {
		truth[p] = true
	}
	q := NewQueueBackend(QueueOptions{})
	opts := shardedEqualityOptions(oracle, 2)
	opts.Oracle = nil
	opts.Backend = q
	rv, err := NewResolver(NewTable(schema...), opts)
	if err != nil {
		t.Fatal(err)
	}
	rv.AppendBatch(rows...)

	done := make(chan error, 1)
	go func() {
		_, err := rv.ResolveDeltaContext(context.Background())
		done <- err
	}()

	// Worker goroutine: claim and answer HITs with ground truth until
	// the resolution finishes. Worker identities rotate — the queue
	// hands each HIT to a given worker at most once, and multi-
	// assignment HITs need as many distinct workers as assignments.
	stop := make(chan struct{})
	go func() {
		worker := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			worker++
			c, ok := q.Claim(fmt.Sprintf("w%d", worker%16))
			if !ok {
				time.Sleep(time.Millisecond)
				continue
			}
			var vs []Verdict
			for _, p := range c.HIT.Pairs {
				vs = append(vs, Verdict{A: record.ID(p.A), B: record.ID(p.B), Match: truth[Pair{A: int(p.A), B: int(p.B)}]})
			}
			if err := q.Answer(c.Token, vs); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Reader loop on the test goroutine: every session read runs many
	// times while the resolve is in flight. The loop yields briefly each
	// pass so the resolve and worker goroutines get CPU on small hosts.
	reads := 0
	for {
		select {
		case err := <-done:
			close(stop)
			if err != nil {
				t.Fatal(err)
			}
			if reads == 0 {
				t.Fatal("resolve finished before any concurrent read ran")
			}
			if rv.JudgedPairs() == 0 {
				t.Fatal("queue-backed resolve judged nothing")
			}
			return
		case <-time.After(100 * time.Microsecond):
		}
		rv.Len()
		rv.Record(reads % len(rows))
		rv.JudgedPairs()
		rv.PendingPairs()
		rv.PartialPairs()
		rv.WorkerStats()
		rv.Verdict(Pair{A: 0, B: 1})
		reads++
	}
}
