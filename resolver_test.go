package crowder

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/crowder/crowder/internal/dataset"
	"github.com/crowder/crowder/internal/record"
)

// resolverDataset builds a crowdable synthetic dataset plus its oracle in
// the public API's types.
func resolverDataset(seed int64, records, dups int) ([][]string, []string, []Pair) {
	d := dataset.RestaurantN(seed, records, dups)
	rows := make([][]string, d.Table.Len())
	for i := range d.Table.Records {
		row := make([]string, len(d.Table.Records[i].Values))
		copy(row, d.Table.Records[i].Values)
		rows[i] = row
	}
	var oracle []Pair
	for _, p := range d.Matches.Slice() {
		oracle = append(oracle, Pair{A: int(p.A), B: int(p.B)})
	}
	return rows, d.Table.Schema, oracle
}

func assertSameMatches(t *testing.T, label string, want, got []Match) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d matches vs %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: match %d differs: %+v vs %+v", label, i, got[i], want[i])
		}
	}
}

// Acceptance: resolving k delta batches incrementally produces
// bit-identical Matches to a from-scratch Resolve of the union table, at
// every parallelism level. Pair-based HITs make crowd verdicts a pure
// function of (Seed, pair), so re-batching across deltas cannot change
// any judgment. Run with -race: ResolveDelta shards the join probe and
// the crowd execution across goroutines.
func TestResolveDeltaEquivalentToFromScratch(t *testing.T) {
	rows, schema, oracle := resolverDataset(11, 240, 40)
	batches := [][][]string{rows[:100], rows[100:140], rows[140:141], rows[141:]}

	for _, par := range []int{1, 2, 8} {
		opts := Options{
			Threshold:   0.4,
			HITType:     PairHITs,
			ClusterSize: 5,
			Oracle:      oracle,
			Seed:        7,
			Parallelism: par,
		}

		union := NewTable(schema...)
		for _, row := range rows {
			union.Append(row...)
		}
		want, err := Resolve(union, opts)
		if err != nil {
			t.Fatal(err)
		}

		rv, err := NewResolver(NewTable(schema...), opts)
		if err != nil {
			t.Fatal(err)
		}
		var got *Result
		totalHITs, totalCost := 0, 0.0
		for _, batch := range batches {
			rv.AppendBatch(batch...)
			got, err = rv.ResolveDelta()
			if err != nil {
				t.Fatal(err)
			}
			totalHITs += got.HITs
			totalCost += got.CostDollars
		}

		assertSameMatches(t, "parallelism", want.Matches, got.Matches)
		if got.Candidates != want.Candidates {
			t.Fatalf("parallelism %d: session candidates %d vs from-scratch %d", par, got.Candidates, want.Candidates)
		}
		if got.TotalPairs != want.TotalPairs {
			t.Fatalf("parallelism %d: TotalPairs %d vs %d", par, got.TotalPairs, want.TotalPairs)
		}
		// Every candidate pair was judged exactly once across the deltas:
		// the session's total crowd spend covers the same pairs the batch
		// run paid for (HIT packing differs, pair coverage must not).
		if totalHITs == 0 || totalCost <= 0 {
			t.Fatalf("parallelism %d: incremental session did no crowd work", par)
		}
	}
}

// Machine-only deltas must likewise reproduce the from-scratch likelihood
// ranking bit-for-bit, for both candidate sources.
func TestResolveDeltaMachineOnlyEquivalence(t *testing.T) {
	rows, schema, _ := resolverDataset(3, 180, 30)
	for _, src := range []CandidateSource{SourceSimJoin, SourceTokenBlocking} {
		opts := Options{Threshold: 0.3, MachineOnly: true, Candidates: src}

		union := NewTable(schema...)
		for _, row := range rows {
			union.Append(row...)
		}
		want, err := Resolve(union, opts)
		if err != nil {
			t.Fatal(err)
		}

		rv, err := NewResolver(NewTable(schema...), opts)
		if err != nil {
			t.Fatal(err)
		}
		var got *Result
		for _, batch := range [][][]string{rows[:60], rows[60:61], rows[61:]} {
			rv.AppendBatch(batch...)
			if got, err = rv.ResolveDelta(); err != nil {
				t.Fatal(err)
			}
		}
		assertSameMatches(t, "source", want.Matches, got.Matches)
	}
}

// Acceptance: a delta that introduces no new candidate pairs issues zero
// HITs and costs nothing — the verdict cache answers everything.
func TestResolveDeltaNoNewCandidatesIssuesNoHITs(t *testing.T) {
	rows, schema, oracle := resolverDataset(5, 120, 20)
	opts := Options{Threshold: 0.4, HITType: PairHITs, Oracle: oracle, Seed: 2}
	rv, err := NewResolver(NewTable(schema...), opts)
	if err != nil {
		t.Fatal(err)
	}
	rv.AppendBatch(rows...)
	first, err := rv.ResolveDelta()
	if err != nil {
		t.Fatal(err)
	}
	if first.HITs == 0 {
		t.Fatal("setup: initial resolve generated no HITs")
	}

	// No appends at all: pure re-aggregation.
	again, err := rv.ResolveDelta()
	if err != nil {
		t.Fatal(err)
	}
	if again.HITs != 0 || again.CostDollars != 0 || again.NewCandidates != 0 {
		t.Fatalf("idle delta did crowd work: %d HITs, $%v, %d new candidates",
			again.HITs, again.CostDollars, again.NewCandidates)
	}
	if again.CachedCandidates != first.Candidates {
		t.Fatalf("CachedCandidates = %d; want %d", again.CachedCandidates, first.Candidates)
	}
	assertSameMatches(t, "idle delta", first.Matches, again.Matches)

	// A delta whose records share no tokens with anything: no candidate
	// pairs survive the threshold, so still zero HITs.
	rv.Append("zzzqx vvwpt", "qqaby", "krrgl", "xx")
	disjoint, err := rv.ResolveDelta()
	if err != nil {
		t.Fatal(err)
	}
	if disjoint.HITs != 0 || disjoint.NewCandidates != 0 {
		t.Fatalf("disjoint delta issued %d HITs for %d new candidates", disjoint.HITs, disjoint.NewCandidates)
	}
	assertSameMatches(t, "disjoint delta", first.Matches, disjoint.Matches)
}

// The delta accounting must tie out: Candidates = New + Cached, and a
// pair judged in batch i is cached (never re-issued) in batch j > i.
func TestResolveDeltaAccounting(t *testing.T) {
	rows, schema, oracle := resolverDataset(9, 160, 30)
	opts := Options{Threshold: 0.4, HITType: PairHITs, Oracle: oracle, Seed: 4}
	rv, err := NewResolver(NewTable(schema...), opts)
	if err != nil {
		t.Fatal(err)
	}
	judged := 0
	for _, batch := range [][][]string{rows[:80], rows[80:]} {
		rv.AppendBatch(batch...)
		res, err := rv.ResolveDelta()
		if err != nil {
			t.Fatal(err)
		}
		if res.Candidates != res.NewCandidates+res.CachedCandidates {
			t.Fatalf("accounting broken: %d != %d + %d", res.Candidates, res.NewCandidates, res.CachedCandidates)
		}
		if res.CachedCandidates != judged {
			t.Fatalf("CachedCandidates = %d; want %d (pairs judged so far)", res.CachedCandidates, judged)
		}
		judged += res.NewCandidates
		if rv.JudgedPairs() != judged {
			t.Fatalf("JudgedPairs = %d; want %d", rv.JudgedPairs(), judged)
		}
	}
}

func TestResolverVerdictAccess(t *testing.T) {
	tab, oracle := paperTable()
	rv, err := NewResolver(tab, Options{Threshold: 0.3, ClusterSize: 4, Oracle: oracle, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rv.ResolveDelta()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Matches {
		conf, ok := rv.Verdict(m.Pair)
		if !ok || conf != m.Confidence {
			t.Fatalf("Verdict(%v) = %v, %v; want %v, true", m.Pair, conf, ok, m.Confidence)
		}
	}
	if _, ok := rv.Verdict(Pair{A: 4, B: 8}); ok {
		t.Error("unjudged pair should not have a verdict")
	}
	if rv.PendingPairs() != 0 {
		t.Errorf("PendingPairs = %d after a clean resolve; want 0", rv.PendingPairs())
	}
}

// A failed delta must not lose discovered candidates: they stay pending
// for the next attempt.
func TestResolverFailedDeltaKeepsPending(t *testing.T) {
	tab, _ := paperTable()
	rv, err := NewResolver(tab, Options{Threshold: 0.3, HITType: HITType(99), Oracle: []Pair{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rv.ResolveDelta(); err == nil {
		t.Fatal("unknown HIT type should fail the delta")
	}
	if rv.PendingPairs() == 0 {
		t.Error("failed delta should leave its candidates pending")
	}
	if rv.JudgedPairs() != 0 {
		t.Error("failed delta must not mark pairs judged")
	}
}

func TestResolverAppendAccessors(t *testing.T) {
	rv, err := NewResolver(NewTable("name", "price"), Options{MachineOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rv.ResolveDelta(); err == nil {
		t.Error("empty resolver should error on ResolveDelta")
	}
	if id := rv.Append("ipad 2", "$499"); id != 0 {
		t.Errorf("first Append ID = %d; want 0", id)
	}
	if first := rv.AppendBatch([]string{"ipad two", "$490"}, []string{"ipod", "$49"}); first != 1 {
		t.Errorf("AppendBatch first ID = %d; want 1", first)
	}
	if rv.Len() != 3 {
		t.Errorf("Len = %d; want 3", rv.Len())
	}
	if got := rv.Record(1); len(got) != 2 || got[0] != "ipad two" {
		t.Errorf("Record(1) = %v", got)
	}
	if _, err := rv.ResolveDelta(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewResolver(nil, Options{}); err == nil {
		t.Error("nil table should error")
	}
}

// Cross-source sessions: the delta join honors CrossSourceOnly and the
// fixed TotalPairs accounting handles arbitrary tag values and 3+
// sources.
func TestResolveCrossSourceUniverse(t *testing.T) {
	tab := NewTable("name")
	tab.AppendFrom(3, "apple ipod touch 8gb")
	tab.AppendFrom(3, "apple ipod touch 8gb black")
	tab.AppendFrom(7, "apple ipod touch 8gb 2nd gen")
	tab.AppendFrom(9, "apple ipod nano 4gb")
	res, err := Resolve(tab, Options{Threshold: 0.1, CrossSourceOnly: true, MachineOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	// Sources {3:2, 7:1, 9:1}: cross pairs = 2·1 + 2·1 + 1·1 = 5.
	if res.TotalPairs != 5 {
		t.Errorf("TotalPairs = %d; want 5", res.TotalPairs)
	}
	for _, m := range res.Matches {
		if m.Pair.A < 2 && m.Pair.B < 2 {
			t.Errorf("same-source pair leaked: %v", m.Pair)
		}
	}
}

func TestNoSpammersOption(t *testing.T) {
	tab, oracle := paperTable()
	clean, err := Resolve(tab, Options{Threshold: 0.3, Oracle: oracle, Seed: 1, SpammerRate: NoSpammers})
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Matches) == 0 {
		t.Fatal("clean-pool resolve produced no matches")
	}
	// The sentinel must reach the population: a clean pool answers the
	// easy iPad trio correctly with high confidence.
	acc := map[Pair]bool{}
	for _, m := range clean.Accepted() {
		acc[m.Pair] = true
	}
	if !acc[Pair{0, 1}] || !acc[Pair{0, 6}] || !acc[Pair{1, 6}] {
		t.Errorf("clean pool missed the iPad trio: %v", clean.Accepted())
	}
}

// Satellite: invalid option values must fail loudly through the shared
// validation path used by Resolve, NewResolver and EstimateCost — they
// previously fell through to defaults or misbehaved silently. Table-
// driven over every rejection branch of Options.validate(), asserting
// the error names the offending field and value so a caller can fix
// their configuration from the message alone.
func TestOptionsValidation(t *testing.T) {
	tab, _ := paperTable()
	cases := []struct {
		name    string
		opts    Options
		wantErr string // substring of the expected error; "" = accepted
	}{
		{"negative workers", Options{Workers: -1, MachineOnly: true}, "Options.Workers = -1"},
		{"negative assignments", Options{Assignments: -3, MachineOnly: true}, "Options.Assignments = -3"},
		{"negative cluster size", Options{ClusterSize: -10, MachineOnly: true}, "Options.ClusterSize = -10"},
		{"threshold below zero", Options{Threshold: -0.5, MachineOnly: true}, "Options.Threshold = -0.5"},
		{"threshold above one", Options{Threshold: 1.5, MachineOnly: true}, "Options.Threshold = 1.5"},
		{"negative parallelism", Options{Parallelism: -2, MachineOnly: true}, "Options.Parallelism = -2"},
		{"negative transitivity", Options{Transitivity: -1, MachineOnly: true}, "Options.Transitivity = -1"},
		{"unknown transitivity mode", Options{Transitivity: 2, MachineOnly: true}, "Options.Transitivity = 2"},
		{"negative aggregation", Options{Aggregation: -1, MachineOnly: true}, "Options.Aggregation = -1"},
		{"unknown aggregation mode", Options{Aggregation: 3, MachineOnly: true}, "Options.Aggregation = 3"},
		{"negative max candidates", Options{MaxCandidates: -5, MachineOnly: true}, "Options.MaxCandidates = -5"},
		{"negative max block", Options{MaxBlock: -2, MachineOnly: true}, "Options.MaxBlock = -2"},
		{"negative shards", Options{Shards: -4, MachineOnly: true}, "Options.Shards = -4"},
		{"shards beyond the cap", Options{Shards: 1025, MachineOnly: true}, "Options.Shards = 1025"},

		{"zero values select defaults", Options{MachineOnly: true}, ""},
		{"zero max candidates keeps everything", Options{MaxCandidates: 0, MachineOnly: true}, ""},
		{"single shard is valid", Options{Shards: 1, MachineOnly: true}, ""},
		{"shard cap is inclusive", Options{Shards: 1024, MachineOnly: true}, ""},
		{"transitivity off is valid", Options{Transitivity: TransitivityOff, MachineOnly: true}, ""},
		{"transitivity on is valid", Options{Transitivity: TransitivityOn, MachineOnly: true}, ""},
		{"majority-vote aggregation is valid", Options{Aggregation: AggregationMajorityVote, MachineOnly: true}, ""},
		{"dawid-skene-map aggregation is valid", Options{Aggregation: AggregationDawidSkeneMAP, MachineOnly: true}, ""},
		{"no-spammers sentinel is valid", Options{SpammerRate: NoSpammers, MachineOnly: true}, ""},
		{"threshold bounds are inclusive", Options{Threshold: 1, MachineOnly: true}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			check := func(api string, err error) {
				t.Helper()
				if tc.wantErr == "" {
					if err != nil {
						t.Errorf("%s rejected valid options: %v", api, err)
					}
					return
				}
				if err == nil {
					t.Errorf("%s accepted invalid options %+v", api, tc.opts)
				} else if !strings.Contains(err.Error(), tc.wantErr) {
					t.Errorf("%s error %q does not name the offending value %q", api, err, tc.wantErr)
				}
			}
			// All three entry points share one validation path; each must
			// reject identically.
			_, err := Resolve(tab, tc.opts)
			check("Resolve", err)
			_, err = NewResolver(tab, tc.opts)
			check("NewResolver", err)
			_, err = EstimateCost(tab, tc.opts)
			check("EstimateCost", err)
		})
	}
}

// Satellite: cancelling a delta mid-execute leaves the discovered
// candidates pending (the failed-delta contract) and persists the
// answers already collected as partial assignment sets; the next delta
// retries cleanly.
func TestResolveDeltaContextCancellation(t *testing.T) {
	tab, oracle := paperTable()
	truth := map[Pair]bool{}
	for _, p := range oracle {
		truth[p] = true
	}
	q := NewQueueBackend(QueueOptions{})
	opts := Options{
		Threshold:   0.3,
		HITType:     PairHITs,
		ClusterSize: 2,
		Assignments: 1,
		Seed:        1,
		Backend:     q,
	}
	rv, err := NewResolver(tab, opts)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	firstComplete := make(chan struct{})
	var once sync.Once
	rv.opts.Progress = func(p Progress) {
		if p.CompletedHITs >= 1 {
			once.Do(func() { close(firstComplete) })
		}
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := rv.ResolveDeltaContext(ctx)
		errCh <- err
	}()

	answer := func(worker string) bool {
		c, ok := q.Claim(worker)
		if !ok {
			return false
		}
		var vs []Verdict
		for _, p := range c.HIT.Pairs {
			vs = append(vs, Verdict{A: record.ID(p.A), B: record.ID(p.B), Match: truth[Pair{A: int(p.A), B: int(p.B)}]})
		}
		if err := q.Answer(c.Token, vs); err != nil {
			t.Error(err)
		}
		return true
	}

	// Answer exactly one HIT, wait for the engine to absorb it, cancel.
	deadline := time.Now().Add(5 * time.Second)
	for !answer("w0") {
		if time.Now().After(deadline) {
			t.Fatal("no HIT became claimable")
		}
		time.Sleep(time.Millisecond)
	}
	<-firstComplete
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled delta returned %v; want context.Canceled", err)
	}

	// The failed-delta contract: candidates pending, nothing judged, the
	// completed HIT's answers persisted as partial assignment sets.
	if rv.PendingPairs() == 0 {
		t.Error("cancelled delta should leave its candidates pending")
	}
	if rv.JudgedPairs() != 0 {
		t.Error("cancelled delta must not mark pairs judged")
	}
	if rv.PartialPairs() == 0 {
		t.Error("answers collected before cancellation should persist as partial sets")
	}

	// Retry: the next delta re-discovers the pending pairs and completes
	// once workers drain the queue.
	rv.opts.Progress = nil
	resCh := make(chan *Result, 1)
	go func() {
		res, err := rv.ResolveDelta()
		if err != nil {
			t.Error(err)
		}
		resCh <- res
	}()
	var res *Result
	worker := 0
	for res == nil {
		if time.Now().After(deadline) {
			t.Fatal("retry never completed")
		}
		if !answer(fmt.Sprintf("w%d", worker%3)) {
			time.Sleep(time.Millisecond)
		}
		worker++
		select {
		case res = <-resCh:
		default:
		}
	}
	if rv.PendingPairs() != 0 || rv.PartialPairs() != 0 {
		t.Errorf("retry should clear pending (%d) and partial (%d) state", rv.PendingPairs(), rv.PartialPairs())
	}
	if rv.JudgedPairs() == 0 || len(res.Accepted()) == 0 {
		t.Fatal("retry resolved nothing")
	}
	// Truthful workers recover the oracle's matches among candidates.
	acc := map[Pair]bool{}
	for _, m := range res.Accepted() {
		acc[m.Pair] = true
	}
	if !acc[Pair{0, 1}] || !acc[Pair{0, 6}] || !acc[Pair{1, 6}] {
		t.Errorf("iPad trio not recovered by queue workers: %v", res.Accepted())
	}
}
