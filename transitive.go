package crowder

import (
	"context"
	"fmt"

	"github.com/crowder/crowder/internal/aggregate"
	"github.com/crowder/crowder/internal/crowd"
	"github.com/crowder/crowder/internal/engine"
	"github.com/crowder/crowder/internal/hitgen"
	"github.com/crowder/crowder/internal/record"
	"github.com/crowder/crowder/internal/simjoin"
	"github.com/crowder/crowder/internal/store"
	"github.com/crowder/crowder/internal/transitivity"
	"github.com/crowder/crowder/internal/verdicts"
)

// transitiveRoundHITs bounds how many HITs one adaptive round posts at
// once. Smaller rounds deduce more (every completed round feeds the
// graph before the next is batched) but serialize more crowd latency;
// larger rounds lean on mid-flight retraction for their savings. Four
// keeps several HITs in flight — exercising retraction — while still
// deducing between rounds.
const transitiveRoundHITs = 4

// transitiveMaxProof bounds the number of asked pairs a deduction may
// rest on. Crowd answers are noisy and chains compound error, so
// verdicts needing a longer proof are asked directly instead of
// deduced.
const transitiveMaxProof = 3

// stageExecuteTransitive is the execute stage under TransitivityOn: an
// adaptive scheduler that replaces the one-shot post-everything batch
// with rounds of post → collect → deduce → retract. Each round batches
// the highest-likelihood pairs whose verdicts are still unknown, posts
// their HITs, folds completed HITs' verdicts into the deduction graph as
// they land (retracting in-flight HITs whose pairs become deducible),
// and then sweeps the remaining pairs: everything the graph now implies
// is recorded as a deduced verdict with provenance instead of being
// asked. Likelihood ordering makes the early rounds the probable
// matches, so clusters form fast and the deducible tail grows.
func stageExecuteTransitive(ctx context.Context, st *resolveState) (*resolveState, error) {
	rv := st.rv
	opts := rv.opts

	backend, err := st.newBackend()
	if err != nil {
		return nil, err
	}

	// The deduction graph is rebuilt from the session's asked verdicts in
	// canonical order: deltas resume deducing from everything the crowd
	// has already answered. Only unanimous verdicts carry proofs. The
	// rebuild holds the session lock shared — it only reads the cache.
	rv.mu.RLock()
	g := rebuildGraph(rv, st.demoted)
	rv.mu.RUnlock()

	// Savings baseline: the HITs the one-shot generate stage would have
	// produced for the same fresh pairs.
	baseline, err := oneShotHITCount(st.pairs, opts)
	if err != nil {
		return nil, err
	}

	var (
		remaining = append([]simjoin.ScoredPair(nil), st.scored...)
		deduced   []transitivity.Deduction
		posted    int
		retracted int
		topUps    int
		answers   int
		completed int
		cost      float64
		elapsed   float64
		ordBase   int
	)

	// Progress events cross rounds: each round's lifecycle manager counts
	// from zero, so its events are offset by the running totals — a
	// client polling job progress sees hits/answers/retractions
	// accumulate over the delta instead of sawtoothing per round.
	// TotalHITs is the tasks posted so far; it grows as rounds post
	// (adaptive scheduling cannot know the final count up front).
	progress := opts.Progress
	if progress != nil {
		outer := progress
		progress = func(p crowd.Progress) {
			p.TotalHITs = posted
			p.CompletedHITs += completed
			p.Answers += answers
			p.TopUps += topUps
			p.Retracted += retracted
			outer(p)
		}
	}

	// deduceSweep records every remaining pair the graph now implies and
	// returns the still-unknown tail, order preserved. It writes the
	// verdict cache, so it takes the session lock; the new deductions log
	// as one atomic commit.
	deduceSweep := func() error {
		rv.mu.Lock()
		defer rv.mu.Unlock()
		keep := remaining[:0]
		var ops []store.Op
		for _, sp := range remaining {
			if d, ok := g.Deduce(sp.Pair); ok {
				rv.cache.PutDeduced(sp.Likelihood, d)
				deduced = append(deduced, d)
				ops = append(ops, store.Op{Deduce: &store.DeduceOp{D: d, Likelihood: sp.Likelihood}})
			} else {
				keep = append(keep, sp)
			}
		}
		remaining = keep
		if len(ops) > 0 {
			return rv.log.Log(&store.Commit{Ops: ops})
		}
		return nil
	}

	commitFailure := func(run *crowd.Result) {
		if run != nil {
			rv.mu.Lock()
			rv.cache.AddPartialAnswers(run.Answers)
			// The delta already failed; the log error (if any) is sticky
			// and surfaces on the next commit.
			rv.log.Log(&store.Commit{Ops: []store.Op{{Partial: run.Answers}}})
			rv.mu.Unlock()
		}
	}

	resume := rv.takeResume()
	defer func() { rv.returnResume(resume) }()

	for {
		if err := deduceSweep(); err != nil {
			return nil, err
		}
		if len(remaining) == 0 {
			break
		}

		// Window: the next round's pairs, at most transitiveRoundHITs
		// HITs' worth, highest likelihood first — minus the pairs that
		// would close a cycle among the pairs already chosen. If the
		// chosen pairs come back as the matches their likelihood
		// predicts, a deferred cycle-closer is deducible for free next
		// round; if they don't, it is still askable then. Asking only
		// (would-be) spanning edges first is where most of the HIT
		// savings on clustered data come from.
		var window []simjoin.ScoredPair
		if opts.HITType == ClusterHITs {
			// Cluster HITs already exploit transitivity *within* each
			// record group (the worker's labelling is transitively
			// closed), and any pair deferred to a later round would
			// fragment the two-tiered packing into strictly more HITs.
			// So cluster rounds take everything still unknown at once —
			// identical packing to the one-shot generator — and the
			// adaptive savings come from the sweep (pairs a delta can
			// deduce from cached verdicts are never batched at all) and
			// from mid-flight retraction across the in-flight groups.
			window, remaining = remaining, nil
		} else {
			window, remaining = selectWindow(g, remaining, opts.ClusterSize*transitiveRoundHITs)
		}
		pairs := simjoin.Pairs(window)

		hits, err := roundHITs(pairs, opts, ordBase)
		if err != nil {
			return nil, err
		}
		ordBase += len(hits)
		posted += len(hits)

		// answered tracks the pairs whose verdicts this round's completed
		// HITs delivered; retraction treats them as resolved alongside the
		// graph's deductions.
		answered := record.NewPairSet()
		run, err := crowd.ExecuteHITs(ctx, backend, hits, crowd.ExecuteOptions{
			OnProgress: progress,
			Interim:    opts.InterimAggregation,
			Aggregator: rv.agg,
			Resume:     resume,
			OnHITComplete: func(h crowd.HIT, hitAns []aggregate.Answer) {
				for _, v := range hitVerdicts(h, hitAns) {
					answered.Add(v.pair.A, v.pair.B)
					g.ObserveStrength(v.pair, v.match, v.strong)
				}
			},
			// Polled for every in-flight HIT after each completion — the
			// collector's hot path — so the existence-only Deducible probe
			// stands in for Deduce (no proof materialization).
			Retractable: func(h crowd.HIT) bool {
				for _, p := range h.Pairs {
					if !answered.Has(p.A, p.B) && !g.Deducible(p) {
						return false
					}
				}
				return true
			},
		})
		if err != nil {
			commitFailure(run)
			return nil, err
		}

		cost += run.CostDollars
		elapsed += run.TotalSeconds // rounds serialize: the crowd answers them in sequence
		retracted += run.RetractedHITs
		topUps += run.TopUps
		completed += len(hits) - run.RetractedHITs
		answers += len(run.Answers)

		// Commit the round: answered pairs become asked verdicts with
		// their crowd answers; a retracted HIT's unanswered pairs are
		// deducible by construction and fall to the next sweep (any pair
		// that somehow is not — a conservative impossibility — stays in
		// remaining and is simply re-batched). The rounds themselves run
		// unlocked (the crowd is the bottleneck); only this commit takes
		// the session lock.
		rv.mu.Lock()
		var requeue []simjoin.ScoredPair
		ops := make([]store.Op, 0, len(window)+1)
		for _, sp := range window {
			if answered.Has(sp.Pair.A, sp.Pair.B) {
				rv.cache.Put(sp.Pair, sp.Likelihood)
				ops = append(ops, store.Op{Put: &store.PutOp{Pair: sp.Pair, Likelihood: sp.Likelihood}})
			} else if d, ok := g.Deduce(sp.Pair); ok {
				rv.cache.PutDeduced(sp.Likelihood, d)
				deduced = append(deduced, d)
				ops = append(ops, store.Op{Deduce: &store.DeduceOp{D: d, Likelihood: sp.Likelihood}})
			} else {
				requeue = append(requeue, sp)
			}
		}
		rv.cache.AddAnswers(run.Answers)
		ops = append(ops, store.Op{Answers: run.Answers})
		logErr := rv.log.Log(&store.Commit{Ops: ops})
		rv.mu.Unlock()
		if logErr != nil {
			return nil, logErr
		}
		remaining = append(requeue, remaining...)
	}

	// Every round completed: recovered HITs never matched by any round
	// cover pairs judged before the crash — withdraw them.
	retractLeftovers(backend, resume)
	resume = nil

	st.res.HITs = posted
	st.res.DeducedPairs = len(deduced)
	st.res.HITsSaved = baseline - posted
	st.res.RetractedHITs = retracted
	st.res.CostDollars = cost
	st.res.ElapsedSeconds = elapsed

	// The delta is fully judged — asked or deduced — so nothing stays
	// pending.
	rv.mu.Lock()
	rv.pending = rv.pending[:0]
	logErr := rv.log.Log(&store.Commit{Ops: []store.Op{{ClearPending: true}}})
	rv.mu.Unlock()
	if logErr != nil {
		return nil, logErr
	}
	return st, nil
}

// rebuildGraph reconstructs the deduction graph from the cache's
// first-hand verdicts — asked and machine-resolved. The caller holds
// the session lock (shared suffices).
//
// Machine verdicts observe as strong edges: the hybrid router only
// resolves a pair by machine when its margin clears the session's
// configured risk bar, the same "confident enough to build proofs on"
// standard the unanimity test applies to crowd answers. With Hybrid off
// the cache holds no machine entries and the rebuild is bit-identical
// to the asked-only one.
//
// For a sharded session the rebuild is partitioned by pair hash — each
// shard observes its own slice of the verdict cache, in canonical order,
// on its own goroutine — and the per-shard union-find forests are merged
// at the exchange (transitivity.Merge), preserving witness and proof
// provenance. Each pair lands in exactly one shard (record.Pair.Shard is
// a pure content hash), so the merge precondition holds and the merged
// graph is bit-identical to the sequential rebuild: deltas deduce the
// same verdicts with the same proofs at every shard count.
func rebuildGraph(rv *Resolver, underReview record.PairSet) *transitivity.Graph {
	asked := rv.cache.GroundEntries()
	if underReview != nil {
		// Machine verdicts the router demoted this delta are not ground
		// truth while under review: their edges are dropped so the sweep
		// cannot deduce a demoted pair right back from its own contested
		// verdict. Deduction from *independent* evidence remains fine.
		kept := asked[:0]
		for _, e := range asked {
			if e.Provenance == verdicts.Machine && underReview.Has(e.Pair.A, e.Pair.B) {
				continue
			}
			kept = append(kept, e)
		}
		asked = kept
	}
	observe := func(g *transitivity.Graph, e *verdicts.Entry) {
		match := e.Posterior >= 0.5
		strong := e.Provenance == verdicts.Machine || unanimous(e.Answers, match)
		g.ObserveStrength(e.Pair, match, strong)
	}
	shards := rv.opts.shardCount()
	if shards <= 1 || len(asked) < 2 {
		g := transitivity.New()
		g.MaxProof = transitiveMaxProof
		for _, e := range asked {
			observe(g, e)
		}
		return g
	}
	buckets := make([][]*verdicts.Entry, shards)
	for _, e := range asked {
		s := e.Pair.Shard(shards)
		buckets[s] = append(buckets[s], e)
	}
	parts := make([]*transitivity.Graph, shards)
	workers := engine.WorkerCount(rv.opts.Parallelism, shards)
	engine.Workers(workers, func(w int) {
		for s := w; s < shards; s += workers {
			pg := transitivity.New()
			pg.MaxProof = transitiveMaxProof
			for _, e := range buckets[s] {
				observe(pg, e)
			}
			parts[s] = pg
		}
	})
	return transitivity.Merge(transitiveMaxProof, parts...)
}

// selectWindow picks up to max pairs from remaining (highest likelihood
// first) for the next round, skipping pairs whose endpoints are already
// connected by the graph's clusters plus the pairs chosen so far: if
// those in-flight pairs are confirmed as matches, the skipped pair is
// deduced for free; if not, it stays in remaining and is batched by a
// later round. Returns the window and the rest (skipped pairs first,
// order otherwise preserved). The first remaining pair is always
// selectable — the sweep already removed everything deducible — so
// every round makes progress.
func selectWindow(g *transitivity.Graph, remaining []simjoin.ScoredPair, max int) (window, rest []simjoin.ScoredPair) {
	// Union-find over cluster roots, seeded lazily: the speculative
	// "every in-flight pair matches" closure for this window only.
	spec := make(map[record.ID]record.ID)
	var root func(record.ID) record.ID
	root = func(v record.ID) record.ID {
		r, ok := spec[v]
		if !ok {
			return v
		}
		r = root(r)
		spec[v] = r
		return r
	}

	i := 0
	for ; i < len(remaining) && len(window) < max; i++ {
		sp := remaining[i]
		ga, gb := g.Root(sp.Pair.A), g.Root(sp.Pair.B)
		if ga == gb {
			// Already one cluster in the real graph, yet the sweep could
			// not deduce the pair (its only proof runs through contested
			// links, or exceeds the proof bound): ask the crowd directly.
			window = append(window, sp)
			continue
		}
		ra, rb := root(ga), root(gb)
		if ra == rb {
			rest = append(rest, sp) // would close a speculative cycle: defer
			continue
		}
		spec[ra] = rb
		window = append(window, sp)
	}
	rest = append(rest, remaining[i:]...)
	return window, rest
}

// roundHITs batches one round's pairs into backend tasks under the
// configured HIT type, with ordinals offset so every round draws fresh
// RNG streams.
func roundHITs(pairs []record.Pair, opts Options, ordBase int) ([]crowd.HIT, error) {
	var hits []crowd.HIT
	switch opts.HITType {
	case PairHITs:
		gen, err := hitgen.GeneratePairHITs(pairs, opts.ClusterSize)
		if err != nil {
			return nil, err
		}
		pairLists := make([][]record.Pair, len(gen))
		for i, h := range gen {
			pairLists[i] = h.Pairs
		}
		hits = crowd.PairHITsFromGen(pairLists, opts.Assignments)
	case ClusterHITs:
		gen, err := generatorFor(opts.Generator, opts.Seed).Generate(pairs, opts.ClusterSize)
		if err != nil {
			return nil, err
		}
		if verr := hitgen.ValidateCover(pairs, gen, opts.ClusterSize); verr != nil {
			return nil, fmt.Errorf("crowder: generated HITs violate the covering invariant: %w", verr)
		}
		records := make([][]record.ID, len(gen))
		covered := make([][]record.Pair, len(gen))
		for i, h := range gen {
			records[i] = h.Records
			covered[i] = h.CoveredPairs(pairs)
		}
		hits = crowd.ClusterHITsFromGen(records, covered, opts.Assignments)
	default:
		return nil, fmt.Errorf("crowder: unknown HIT type %d", opts.HITType)
	}
	crowd.OffsetOrds(hits, ordBase)
	return hits, nil
}

// oneShotHITCount is the number of HITs the non-transitive generate
// stage would produce for the pairs — the baseline Result.HITsSaved is
// measured against.
func oneShotHITCount(pairs []record.Pair, opts Options) (int, error) {
	if len(pairs) == 0 {
		return 0, nil
	}
	switch opts.HITType {
	case PairHITs:
		hits, err := hitgen.GeneratePairHITs(pairs, opts.ClusterSize)
		if err != nil {
			return 0, err
		}
		return len(hits), nil
	case ClusterHITs:
		hits, err := generatorFor(opts.Generator, opts.Seed).Generate(pairs, opts.ClusterSize)
		if err != nil {
			return 0, err
		}
		return len(hits), nil
	default:
		return 0, fmt.Errorf("crowder: unknown HIT type %d", opts.HITType)
	}
}

// pairVerdict is one pair's majority verdict from a completed HIT.
// strong marks a unanimous replica set — the only verdicts deduction
// proofs are allowed to rest on.
type pairVerdict struct {
	pair   record.Pair
	match  bool
	strong bool
}

// hitVerdicts reduces a completed HIT's raw answers to one majority
// verdict per covered pair, in the HIT's deterministic pair order. Ties
// (possible with an even replication factor) resolve to non-match: the
// deduction graph only merges clusters on a strict majority.
func hitVerdicts(h crowd.HIT, answers []aggregate.Answer) []pairVerdict {
	matches := make(map[record.Pair]int, len(h.Pairs))
	total := make(map[record.Pair]int, len(h.Pairs))
	for _, a := range answers {
		total[a.Pair]++
		if a.Match {
			matches[a.Pair]++
		}
	}
	out := make([]pairVerdict, 0, len(h.Pairs))
	seen := make(map[record.Pair]bool, len(h.Pairs))
	for _, p := range h.Pairs {
		if seen[p] {
			continue
		}
		seen[p] = true
		match := 2*matches[p] > total[p]
		out = append(out, pairVerdict{
			pair:   p,
			match:  match,
			strong: total[p] > 0 && (matches[p] == total[p]) == match && (matches[p] == 0) != match,
		})
	}
	return out
}

// unanimous reports whether a cached entry's raw answers unanimously
// support its aggregated verdict — the strength bar for cached verdicts
// feeding a delta's deduction graph, mirroring hitVerdicts' bar for
// fresh ones.
func unanimous(answers []aggregate.Answer, match bool) bool {
	if len(answers) == 0 {
		return false
	}
	m := 0
	for _, a := range answers {
		if a.Match {
			m++
		}
	}
	if match {
		return m == len(answers)
	}
	return m == 0
}

// appendDeducedMatches adds the cache's deduced verdicts to the match
// list with confidences re-derived from the current posteriors of their
// proofs, returning how many were added. Asked pairs are already in the
// list via the aggregation posterior.
func appendDeducedMatches(cache *verdicts.Cache, ms *[]Match) int {
	n := 0
	for _, p := range cache.Pairs() {
		e := cache.Get(p)
		if e.Provenance != verdicts.Deduced {
			continue
		}
		e.Posterior = deducedConfidence(cache, e.Deduction)
		*ms = append(*ms, Match{
			Pair:       Pair{A: int(p.A), B: int(p.B)},
			Confidence: e.Posterior,
		})
		n++
	}
	return n
}

// deducedConfidence converts a deduction's proof into a match
// probability using the current posteriors of its supporting asked
// pairs. A chain of matches is only as strong as its weakest link, so
// the proof strength is the minimum posterior along the path — for a
// negative deduction additionally min'd with the witness non-match's
// complement. Supporting pairs whose posteriors drifted across 0.5
// after re-aggregation weaken the deduction past the decision boundary:
// a deduction is never more certain than what it rests on.
//
// A positive deduction reports the strength directly (strength < 0.5 ⇒
// the chain is broken and the pair is not accepted). A negative one
// maps strength s to (1−s)/2 ∈ [0, 0.5]: an ironclad proof of A≠B
// yields confidence ~0, and a *broken* proof decays toward 0.5 —
// "nothing is known" — never past it. (The naive complement 1−s would
// invert: the more broken the non-match proof, the more confidently the
// pair would be published as a match.)
func deducedConfidence(cache *verdicts.Cache, d *transitivity.Deduction) float64 {
	strength := 1.0
	for _, p := range d.Path {
		if e := cache.Get(p); e != nil && e.Posterior < strength {
			strength = e.Posterior
		}
	}
	if !d.Negative {
		return strength
	}
	if e := cache.Get(d.Witness); e != nil && 1-e.Posterior < strength {
		strength = 1 - e.Posterior
	}
	return (1 - strength) / 2
}
