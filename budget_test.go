package crowder

import (
	"errors"
	"testing"
)

func TestPlanBudgetPicksLowestAffordable(t *testing.T) {
	tab, _ := paperTable()
	plan, err := PlanBudget(tab, BudgetOptions{
		Options:       Options{ClusterSize: 4},
		BudgetDollars: 100, // everything fits
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Threshold != 0.1 {
		t.Errorf("with a huge budget the lowest threshold should win; got %v", plan.Threshold)
	}
	if len(plan.Considered) != 8 {
		t.Errorf("considered %d thresholds; want the 8 defaults", len(plan.Considered))
	}
	for i := 1; i < len(plan.Considered); i++ {
		if plan.Considered[i].Threshold < plan.Considered[i-1].Threshold {
			t.Error("considered thresholds should be ascending")
		}
	}
}

func TestPlanBudgetTight(t *testing.T) {
	tab, _ := paperTable()
	// Find the cost at the highest threshold, then set the budget between
	// the cheapest and the most expensive plan.
	all, err := PlanBudget(tab, BudgetOptions{
		Options:       Options{ClusterSize: 4},
		BudgetDollars: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	cheapest := all.Considered[len(all.Considered)-1].Estimate.CostDollars
	dearest := all.Considered[0].Estimate.CostDollars
	if cheapest >= dearest {
		t.Skipf("degenerate cost spread on tiny table: %v vs %v", cheapest, dearest)
	}
	mid := (cheapest + dearest) / 2
	plan, err := PlanBudget(tab, BudgetOptions{
		Options:       Options{ClusterSize: 4},
		BudgetDollars: mid,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Estimate.CostDollars > mid {
		t.Errorf("chosen plan costs %v, over budget %v", plan.Estimate.CostDollars, mid)
	}
	if plan.Threshold <= all.Considered[0].Threshold {
		t.Error("a tight budget should force a higher threshold than the most permissive")
	}
}

func TestPlanBudgetTooSmall(t *testing.T) {
	tab, _ := paperTable()
	_, err := PlanBudget(tab, BudgetOptions{
		Options:       Options{ClusterSize: 4},
		BudgetDollars: 0.0001,
	})
	if !errors.Is(err, ErrBudgetTooSmall) {
		t.Fatalf("err = %v; want ErrBudgetTooSmall", err)
	}
}

func TestPlanBudgetErrors(t *testing.T) {
	tab, _ := paperTable()
	if _, err := PlanBudget(tab, BudgetOptions{BudgetDollars: 0}); err == nil {
		t.Error("zero budget should error")
	}
	_, err := PlanBudget(tab, BudgetOptions{
		BudgetDollars: 10,
		Thresholds:    []float64{-0.5},
	})
	if err == nil {
		t.Error("invalid threshold should error")
	}
}

func TestResolveWithBudgetEndToEnd(t *testing.T) {
	tab, oracle := paperTable()
	res, plan, err := ResolveWithBudget(tab, BudgetOptions{
		Options: Options{
			ClusterSize: 4,
			Oracle:      oracle,
			Seed:        1,
		},
		BudgetDollars: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CostDollars > 1.0 {
		t.Errorf("spent %v, over the $1 budget", res.CostDollars)
	}
	if res.CostDollars != plan.Estimate.CostDollars {
		t.Errorf("actual cost %v differs from planned %v", res.CostDollars, plan.Estimate.CostDollars)
	}
	if len(res.Accepted()) == 0 {
		t.Error("budgeted run found no matches")
	}
}

func TestResolveWithBudgetPropagatesPlanError(t *testing.T) {
	tab, oracle := paperTable()
	_, plan, err := ResolveWithBudget(tab, BudgetOptions{
		Options:       Options{ClusterSize: 4, Oracle: oracle},
		BudgetDollars: 0.0001,
	})
	if !errors.Is(err, ErrBudgetTooSmall) {
		t.Fatalf("err = %v; want ErrBudgetTooSmall", err)
	}
	if plan == nil || len(plan.Considered) == 0 {
		t.Error("plan with considered thresholds should be returned even on failure")
	}
}
