package crowder

import (
	"testing"
)

// paperTable builds Table 1 of the paper.
func paperTable() (*Table, []Pair) {
	t := NewTable("product_name", "price")
	t.Append("iPad Two 16GB WiFi White", "$490")               // 0 (r1)
	t.Append("iPad 2nd generation 16GB WiFi White", "$469")    // 1 (r2)
	t.Append("iPhone 4th generation White 16GB", "$545")       // 2 (r3)
	t.Append("Apple iPhone 4 16GB White", "$520")              // 3 (r4)
	t.Append("Apple iPhone 3rd generation Black 16GB", "$375") // 4 (r5)
	t.Append("iPhone 4 32GB White", "$599")                    // 5 (r6)
	t.Append("Apple iPad2 16GB WiFi White", "$499")            // 6 (r7)
	t.Append("Apple iPod shuffle 2GB Blue", "$49")             // 7 (r8)
	t.Append("Apple iPod shuffle USB Cable", "$19")            // 8 (r9)
	oracle := []Pair{{0, 1}, {0, 6}, {1, 6}, {2, 3}}
	return t, oracle
}

func TestResolveHybridOnPaperTable(t *testing.T) {
	tab, oracle := paperTable()
	res, err := Resolve(tab, Options{
		Threshold:   0.3,
		ClusterSize: 4,
		Oracle:      oracle,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalPairs != 36 {
		t.Errorf("TotalPairs = %d; want 36", res.TotalPairs)
	}
	if res.Candidates == 0 || res.Candidates >= 36 {
		t.Errorf("Candidates = %d; pruning should keep a strict subset", res.Candidates)
	}
	if res.HITs == 0 {
		t.Error("no HITs generated")
	}
	if res.CostDollars <= 0 || res.ElapsedSeconds <= 0 {
		t.Errorf("cost/latency not accounted: %v, %v", res.CostDollars, res.ElapsedSeconds)
	}
	// The reliable simulated crowd must find the true matches that
	// survived pruning.
	acc := res.Accepted()
	found := map[Pair]bool{}
	for _, m := range acc {
		found[m.Pair] = true
	}
	if !found[Pair{0, 1}] || !found[Pair{0, 6}] || !found[Pair{1, 6}] {
		t.Errorf("iPad trio not fully recovered: %v", acc)
	}
}

func TestResolveMachineOnly(t *testing.T) {
	tab, _ := paperTable()
	res, err := Resolve(tab, Options{Threshold: 0.3, MachineOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.HITs != 0 || res.CostDollars != 0 {
		t.Error("machine-only run should not create HITs or cost")
	}
	if len(res.Matches) != res.Candidates {
		t.Errorf("machine-only should rank all candidates: %d vs %d", len(res.Matches), res.Candidates)
	}
	// Ranked by likelihood descending.
	for i := 1; i < len(res.Matches); i++ {
		if res.Matches[i-1].Confidence < res.Matches[i].Confidence {
			t.Fatal("matches not sorted by confidence")
		}
	}
}

func TestResolvePairHITs(t *testing.T) {
	tab, oracle := paperTable()
	res, err := Resolve(tab, Options{
		Threshold:   0.3,
		ClusterSize: 2,
		HITType:     PairHITs,
		Oracle:      oracle,
		Seed:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// ⌈candidates / 2⌉ pair-based HITs.
	want := (res.Candidates + 1) / 2
	if res.HITs != want {
		t.Errorf("HITs = %d; want %d", res.HITs, want)
	}
}

func TestResolveAllGenerators(t *testing.T) {
	tab, oracle := paperTable()
	for _, g := range []Generator{GenTwoTiered, GenRandom, GenBFS, GenDFS, GenApprox} {
		res, err := Resolve(tab, Options{
			Threshold:   0.3,
			ClusterSize: 4,
			Generator:   g,
			Oracle:      oracle,
			Seed:        3,
		})
		if err != nil {
			t.Fatalf("generator %d: %v", g, err)
		}
		if res.HITs == 0 {
			t.Errorf("generator %d produced no HITs", g)
		}
	}
}

func TestResolveErrors(t *testing.T) {
	if _, err := Resolve(nil, Options{MachineOnly: true}); err == nil {
		t.Error("nil table should error")
	}
	if _, err := Resolve(NewTable("a"), Options{MachineOnly: true}); err == nil {
		t.Error("empty table should error")
	}
	tab, _ := paperTable()
	if _, err := Resolve(tab, Options{}); err == nil {
		t.Error("missing oracle should error for crowd runs")
	}
	if _, err := Resolve(tab, Options{Oracle: []Pair{}, HITType: HITType(99)}); err == nil {
		t.Error("unknown HIT type should error")
	}
}

func TestResolveDeterministic(t *testing.T) {
	tab, oracle := paperTable()
	opts := Options{Threshold: 0.3, ClusterSize: 4, Oracle: oracle, Seed: 9}
	r1, err := Resolve(tab, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Resolve(tab, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Matches) != len(r2.Matches) {
		t.Fatal("same options gave different match counts")
	}
	for i := range r1.Matches {
		if r1.Matches[i] != r2.Matches[i] {
			t.Fatal("same options gave different matches")
		}
	}
}

// The whole workflow must be bit-identical at every parallelism level:
// the sharded join merges deterministically and every HIT has its own
// seeded RNG stream.
func TestResolveParallelismInvariance(t *testing.T) {
	tab, oracle := paperTable()
	base, err := Resolve(tab, Options{
		Threshold: 0.3, ClusterSize: 4, Oracle: oracle, Seed: 7, Parallelism: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 8} {
		got, err := Resolve(tab, Options{
			Threshold: 0.3, ClusterSize: 4, Oracle: oracle, Seed: 7, Parallelism: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got.Candidates != base.Candidates || got.HITs != base.HITs ||
			got.CostDollars != base.CostDollars || got.ElapsedSeconds != base.ElapsedSeconds {
			t.Fatalf("parallelism %d changed the workflow footprint", par)
		}
		if len(got.Matches) != len(base.Matches) {
			t.Fatalf("parallelism %d: %d matches vs %d", par, len(got.Matches), len(base.Matches))
		}
		for i := range base.Matches {
			if got.Matches[i] != base.Matches[i] {
				t.Fatalf("parallelism %d: match %d differs: %v vs %v",
					par, i, got.Matches[i], base.Matches[i])
			}
		}
	}
}

func TestResolveStageStats(t *testing.T) {
	tab, oracle := paperTable()
	res, err := Resolve(tab, Options{Threshold: 0.3, ClusterSize: 4, Oracle: oracle, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"prune", "route", "generate", "execute", "aggregate"}
	if len(res.Stages) != len(want) {
		t.Fatalf("Stages = %+v; want %d entries", res.Stages, len(want))
	}
	for i, name := range want {
		if res.Stages[i].Name != name {
			t.Errorf("stage %d = %q; want %q", i, res.Stages[i].Name, name)
		}
		if res.Stages[i].Seconds < 0 {
			t.Errorf("stage %q has negative duration", name)
		}
	}
	// Machine-only runs still report all five stages (the crowd ones as
	// ~zero-cost no-ops).
	mo, err := Resolve(tab, Options{Threshold: 0.3, MachineOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(mo.Stages) != len(want) {
		t.Fatalf("machine-only Stages = %+v", mo.Stages)
	}
}

func TestResolveThresholdPruning(t *testing.T) {
	tab, _ := paperTable()
	lo, err := Resolve(tab, Options{Threshold: 0.1, MachineOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Resolve(tab, Options{Threshold: 0.5, MachineOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if hi.Candidates >= lo.Candidates {
		t.Errorf("higher threshold should prune more: %d vs %d", hi.Candidates, lo.Candidates)
	}
}

func TestTableRecordAccess(t *testing.T) {
	tab := NewTable("name")
	id := tab.Append("hello world")
	if got := tab.Record(id); len(got) != 1 || got[0] != "hello world" {
		t.Errorf("Record = %v", got)
	}
	if tab.Record(99) != nil {
		t.Error("out-of-range Record should be nil")
	}
	if tab.Len() != 1 {
		t.Errorf("Len = %d; want 1", tab.Len())
	}
}

func TestCrossSourceOption(t *testing.T) {
	tab := NewTable("name")
	tab.AppendFrom(0, "apple ipod touch 8gb")
	tab.AppendFrom(0, "apple ipod touch 8gb black")
	tab.AppendFrom(1, "apple ipod touch 8gb 2nd gen")
	res, err := Resolve(tab, Options{Threshold: 0.1, CrossSourceOnly: true, MachineOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalPairs != 2 {
		t.Errorf("TotalPairs = %d; want 2 (cross-source only)", res.TotalPairs)
	}
	for _, m := range res.Matches {
		if m.Pair.A != 2 && m.Pair.B != 2 {
			t.Errorf("same-source pair leaked: %v", m.Pair)
		}
	}
}

func TestSortMatches(t *testing.T) {
	ms := []Match{
		{Pair: Pair{3, 4}, Confidence: 0.2},
		{Pair: Pair{1, 2}, Confidence: 0.9},
		{Pair: Pair{0, 5}, Confidence: 0.9},
	}
	SortMatches(ms)
	if ms[0].Pair != (Pair{0, 5}) || ms[1].Pair != (Pair{1, 2}) || ms[2].Pair != (Pair{3, 4}) {
		t.Errorf("SortMatches = %v", ms)
	}
}

func TestEstimateCost(t *testing.T) {
	tab, _ := paperTable()
	est, err := EstimateCost(tab, Options{Threshold: 0.3, ClusterSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if est.Candidates == 0 || est.HITs == 0 {
		t.Fatalf("estimate = %+v; want non-zero candidates and HITs", est)
	}
	want := float64(est.HITs*3) * 0.025
	if est.CostDollars != want {
		t.Errorf("cost = %v; want %v", est.CostDollars, want)
	}
	// The estimate must agree with an actual run's HIT count and cost.
	res, err := Resolve(tab, Options{Threshold: 0.3, ClusterSize: 4, Oracle: []Pair{}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.HITs != est.HITs || res.CostDollars != est.CostDollars {
		t.Errorf("estimate (%d HITs, $%v) disagrees with run (%d HITs, $%v)",
			est.HITs, est.CostDollars, res.HITs, res.CostDollars)
	}
}

func TestEstimateCostErrors(t *testing.T) {
	if _, err := EstimateCost(nil, Options{}); err == nil {
		t.Error("nil table should error")
	}
	tab, _ := paperTable()
	if _, err := EstimateCost(tab, Options{HITType: HITType(7)}); err == nil {
		t.Error("unknown HIT type should error")
	}
	est, err := EstimateCost(tab, Options{Threshold: 0.99})
	if err != nil || est.HITs != 0 {
		t.Errorf("no candidates should estimate zero HITs: %+v, %v", est, err)
	}
}

func TestEstimateCostPairHITs(t *testing.T) {
	tab, _ := paperTable()
	est, err := EstimateCost(tab, Options{Threshold: 0.3, ClusterSize: 2, HITType: PairHITs})
	if err != nil {
		t.Fatal(err)
	}
	if est.HITs != (est.Candidates+1)/2 {
		t.Errorf("pair-HIT estimate = %d HITs for %d candidates", est.HITs, est.Candidates)
	}
}

func TestTokenBlockingSourceEquivalence(t *testing.T) {
	// Token blocking is complete for thresholds > 0, so the machine-only
	// ranking must match the simjoin path exactly.
	tab, _ := paperTable()
	a, err := Resolve(tab, Options{Threshold: 0.3, MachineOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Resolve(tab, Options{Threshold: 0.3, MachineOnly: true, Candidates: SourceTokenBlocking})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Matches) != len(b.Matches) {
		t.Fatalf("simjoin found %d pairs, token blocking %d", len(a.Matches), len(b.Matches))
	}
	for i := range a.Matches {
		if a.Matches[i] != b.Matches[i] {
			t.Fatalf("mismatch at %d: %v vs %v", i, a.Matches[i], b.Matches[i])
		}
	}
}

func TestTokenBlockingMaxBlockReduces(t *testing.T) {
	tab, _ := paperTable()
	full, err := Resolve(tab, Options{Threshold: 0.1, MachineOnly: true, Candidates: SourceTokenBlocking})
	if err != nil {
		t.Fatal(err)
	}
	// "apple"/"white"/"16gb" blocks dominate; a tight cap must shrink the
	// candidate set.
	capped, err := Resolve(tab, Options{
		Threshold: 0.1, MachineOnly: true,
		Candidates: SourceTokenBlocking, MaxBlock: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if capped.Candidates >= full.Candidates {
		t.Errorf("MaxBlock should reduce candidates: %d vs %d", capped.Candidates, full.Candidates)
	}
}

func TestUnknownCandidateSource(t *testing.T) {
	tab, _ := paperTable()
	if _, err := Resolve(tab, Options{MachineOnly: true, Candidates: CandidateSource(9)}); err == nil {
		t.Error("unknown candidate source should error")
	}
	if _, err := EstimateCost(tab, Options{Candidates: CandidateSource(9)}); err == nil {
		t.Error("unknown candidate source should error in EstimateCost")
	}
}
