module github.com/crowder/crowder

go 1.24
