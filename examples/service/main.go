// Service example: run crowderd in-process and drive the full HIT
// lifecycle over HTTP — create a queue-backend table, append the paper's
// Table 1, start an asynchronous resolution job, play the crowd by
// claiming and answering the open HITs through the worker API, poll the
// job, and fetch the matches.
//
//	go run ./examples/service
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"github.com/crowder/crowder/internal/service"
)

// post sends a JSON body and decodes the JSON reply into out (if non-nil).
func post(client *http.Client, url string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("%s: %d %v", url, resp.StatusCode, e)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

func get(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

func main() {
	// An in-process crowderd; `go run ./cmd/crowderd` serves the same API
	// on a real port.
	srv := httptest.NewServer(service.New(service.Options{Lease: time.Minute}))
	defer srv.Close()
	client := srv.Client()
	fmt.Printf("crowderd (in-process) at %s\n\n", srv.URL)

	// 1. Create a table on the queue backend: HITs wait for real workers.
	err := post(client, srv.URL+"/tables/products", map[string]any{
		"schema": []string{"product_name", "price"},
		"options": map[string]any{
			"threshold": 0.3, "hit_type": "pair", "cluster_size": 2,
			"backend": "queue", "interim": true,
		},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Append the paper's Table 1.
	rows := [][]string{
		{"iPad Two 16GB WiFi White", "$490"},
		{"iPad 2nd generation 16GB WiFi White", "$469"},
		{"iPhone 4th generation White 16GB", "$545"},
		{"Apple iPhone 4 16GB White", "$520"},
		{"Apple iPhone 3rd generation Black 16GB", "$375"},
		{"iPhone 4 32GB White", "$599"},
		{"Apple iPad2 16GB WiFi White", "$499"},
		{"Apple iPod shuffle 2GB Blue", "$49"},
		{"Apple iPod shuffle USB Cable", "$19"},
	}
	var appended struct {
		FirstID int `json:"first_id"`
		Count   int `json:"count"`
	}
	if err := post(client, srv.URL+"/tables/products/records", map[string]any{"rows": rows}, &appended); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("appended %d records (ids %d..%d)\n", appended.Count, appended.FirstID, appended.FirstID+appended.Count-1)

	// 3. Kick off the asynchronous resolution job.
	var kicked struct {
		Job int `json:"job"`
	}
	if err := post(client, srv.URL+"/tables/products/resolve", map[string]any{}, &kicked); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resolution job %d started; the engine is waiting on the crowd\n\n", kicked.Job)

	// 4. Play the crowd: the true duplicates a human would recognize.
	matches := map[[2]int]bool{
		{0, 1}: true, {0, 6}: true, {1, 6}: true, // the iPad trio
		{2, 3}: true, // the iPhone pair
	}
	answered := 0
	for {
		var claim struct {
			Token string `json:"token"`
			HIT   struct {
				ID    int `json:"id"`
				Pairs []struct {
					A     int      `json:"a"`
					B     int      `json:"b"`
					Left  []string `json:"left"`
					Right []string `json:"right"`
				} `json:"pairs"`
			} `json:"hit"`
		}
		err := post(client, srv.URL+"/tables/products/hits/claim",
			map[string]any{"worker": fmt.Sprintf("worker-%d", answered%3)}, &claim)
		if err != nil {
			// No open HITs: either the job hasn't posted yet or all
			// assignments are answered — poll the job to find out.
			var status struct {
				State string `json:"state"`
			}
			if err := get(client, fmt.Sprintf("%s/tables/products/jobs/%d", srv.URL, kicked.Job), &status); err != nil {
				log.Fatal(err)
			}
			if status.State != "running" && status.State != "queued" {
				break
			}
			time.Sleep(5 * time.Millisecond)
			continue
		}
		var verdicts []map[string]any
		for _, p := range claim.HIT.Pairs {
			verdicts = append(verdicts, map[string]any{
				"a": p.A, "b": p.B, "match": matches[[2]int{p.A, p.B}],
			})
		}
		if err := post(client, srv.URL+"/tables/products/hits/answer",
			map[string]any{"token": claim.Token, "answers": verdicts}, nil); err != nil {
			log.Fatal(err)
		}
		answered++
	}
	fmt.Printf("crowd answered %d assignments over HTTP\n", answered)

	// 5. The job finished; read its accounting and the ranked matches.
	var status struct {
		State  string `json:"state"`
		Result struct {
			Candidates  int     `json:"candidates"`
			HITs        int     `json:"hits"`
			CostDollars float64 `json:"cost_dollars"`
		} `json:"result"`
	}
	if err := get(client, fmt.Sprintf("%s/tables/products/jobs/%d", srv.URL, kicked.Job), &status); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job state: %s (%d candidates, %d HITs, $%.2f)\n",
		status.State, status.Result.Candidates, status.Result.HITs, status.Result.CostDollars)

	var got struct {
		Matches []struct {
			A          int     `json:"a"`
			B          int     `json:"b"`
			Confidence float64 `json:"confidence"`
		} `json:"matches"`
	}
	if err := get(client, srv.URL+"/tables/products/matches?min=0.5", &got); err != nil {
		log.Fatal(err)
	}
	fmt.Println("matches:")
	for _, m := range got.Matches {
		fmt.Printf("  %s = %s  (confidence %.2f)\n", rows[m.A][0], rows[m.B][0], m.Confidence)
	}
}
