// Budget: the paper's future-work direction ("the development of a
// budget-based approach to hybrid entity resolution. Users may wish to
// trade off cost, quality and latency", Section 9).
//
// Given a dollar budget, the example sweeps the likelihood threshold,
// predicts the crowd cost of each setting from the two-tiered HIT count,
// picks the lowest threshold that fits the budget (lowest threshold =
// highest attainable recall), and runs the hybrid workflow there.
//
//	go run ./examples/budget -budget 25
package main

import (
	"flag"
	"fmt"
	"log"

	crowder "github.com/crowder/crowder"
	"github.com/crowder/crowder/internal/dataset"
	"github.com/crowder/crowder/internal/record"
)

func main() {
	budget := flag.Float64("budget", 25, "crowd budget in dollars")
	flag.Parse()

	src := dataset.Product(1)
	table := crowder.NewTable(src.Table.Schema...)
	for i := range src.Table.Records {
		table.AppendFrom(src.Table.Source[i], src.Table.Records[i].Values...)
	}
	var oracle []crowder.Pair
	for p := range src.Matches {
		oracle = append(oracle, crowder.Pair{A: int(p.A), B: int(p.B)})
	}

	fmt.Println(src.Stats())
	fmt.Printf("budget: $%.2f\n\n", *budget)
	fmt.Printf("%-10s %10s %8s %10s %10s\n", "Threshold", "Pairs", "HITs", "Cost", "Fits?")

	// Sweep thresholds from permissive to strict; estimate cost by
	// actually generating the HITs (cheap — no crowd involved), and keep
	// the cheapest threshold that still fits, preferring lower thresholds
	// (more recall) when affordable.
	chosen := -1.0
	for _, tau := range []float64{0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5} {
		probe, err := crowder.Resolve(table, crowder.Options{
			Threshold:       tau,
			CrossSourceOnly: true,
			MachineOnly:     true,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Estimate: two-tiered HIT count × 3 assignments × $0.025.
		est, err := crowder.EstimateCost(table, crowder.Options{
			Threshold:       tau,
			ClusterSize:     10,
			CrossSourceOnly: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fits := est.CostDollars <= *budget
		fmt.Printf("%-10.2f %10d %8d %9.2f$ %10v\n",
			tau, probe.Candidates, est.HITs, est.CostDollars, fits)
		if fits && chosen < 0 {
			chosen = tau
		}
	}
	if chosen < 0 {
		fmt.Println("\nno threshold fits the budget; raise it or accept machine-only results")
		return
	}

	fmt.Printf("\nrunning hybrid workflow at threshold %.2f\n", chosen)
	res, err := crowder.Resolve(table, crowder.Options{
		Threshold:       chosen,
		ClusterSize:     10,
		CrossSourceOnly: true,
		Oracle:          oracle,
		Seed:            1,
	})
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	for _, m := range res.Accepted() {
		if src.Matches.Has(record.ID(m.Pair.A), record.ID(m.Pair.B)) {
			correct++
		}
	}
	fmt.Printf("spent $%.2f on %d HITs; recall %.1f%% at precision %.1f%%\n",
		res.CostDollars, res.HITs,
		100*float64(correct)/float64(src.Matches.Len()),
		100*float64(correct)/float64(len(res.Accepted())))
}
