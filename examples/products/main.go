// Products: integrate two e-commerce catalogs — the scenario behind the
// paper's Product (Abt–Buy) dataset, where the two sources describe the
// same items with very different text and machine similarity alone cannot
// find the matches.
//
// The example builds the paper-scale synthetic Product dataset (1081 +
// 1092 records, 1097 true cross-source matches), then contrasts the
// machine-only baseline against the hybrid workflow at the paper's
// threshold of 0.2.
//
//	go run ./examples/products
package main

import (
	"fmt"
	"log"

	crowder "github.com/crowder/crowder"
	"github.com/crowder/crowder/internal/dataset"
	"github.com/crowder/crowder/internal/record"
)

func main() {
	src := dataset.Product(1)

	table := crowder.NewTable(src.Table.Schema...)
	for i := range src.Table.Records {
		table.AppendFrom(src.Table.Source[i], src.Table.Records[i].Values...)
	}
	var oracle []crowder.Pair
	for p := range src.Matches {
		oracle = append(oracle, crowder.Pair{A: int(p.A), B: int(p.B)})
	}

	fmt.Println(src.Stats())

	machine, err := crowder.Resolve(table, crowder.Options{
		Threshold:       0.5,
		CrossSourceOnly: true,
		MachineOnly:     true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmachine-only @0.5: %d candidates, %d true matches found (%.1f%% recall)\n",
		machine.Candidates, trueMatches(machine, src), 100*float64(trueMatches(machine, src))/float64(src.Matches.Len()))

	hybrid, err := crowder.Resolve(table, crowder.Options{
		Threshold:         0.2,
		ClusterSize:       10,
		CrossSourceOnly:   true,
		QualificationTest: true,
		Oracle:            oracle,
		Seed:              1,
	})
	if err != nil {
		log.Fatal(err)
	}
	accepted := hybrid.Accepted()
	correct := 0
	for _, m := range accepted {
		if src.Matches.Has(record.ID(m.Pair.A), record.ID(m.Pair.B)) {
			correct++
		}
	}
	fmt.Printf("hybrid @0.2:       %d candidates → %d HITs ($%.2f, %.1f simulated hours)\n",
		hybrid.Candidates, hybrid.HITs, hybrid.CostDollars, hybrid.ElapsedSeconds/3600)
	fmt.Printf("                   %d pairs accepted, %d correct (precision %.1f%%, recall %.1f%%)\n",
		len(accepted), correct,
		100*float64(correct)/float64(len(accepted)),
		100*float64(correct)/float64(src.Matches.Len()))
}

func trueMatches(res *crowder.Result, src *dataset.Dataset) int {
	n := 0
	for _, m := range res.Matches {
		if src.Matches.Has(record.ID(m.Pair.A), record.ID(m.Pair.B)) {
			n++
		}
	}
	return n
}
