// Restaurants: de-duplicate a directory of restaurant listings — the
// scenario behind the paper's Restaurant (Fodor's/Zagat) dataset, where
// duplicates are formatting variants of the same establishment.
//
// The example compares the five cluster-based HIT generation strategies on
// the same pruned pair set, showing why the two-tiered algorithm matters:
// at the same answer quality it needs a fraction of the tasks (= cost).
//
//	go run ./examples/restaurants
package main

import (
	"fmt"
	"log"

	crowder "github.com/crowder/crowder"
	"github.com/crowder/crowder/internal/dataset"
)

func main() {
	src := dataset.Restaurant(1)
	table := crowder.NewTable(src.Table.Schema...)
	for i := range src.Table.Records {
		table.Append(src.Table.Records[i].Values...)
	}
	var oracle []crowder.Pair
	for p := range src.Matches {
		oracle = append(oracle, crowder.Pair{A: int(p.A), B: int(p.B)})
	}
	fmt.Println(src.Stats())
	fmt.Printf("\n%-12s %8s %10s %12s\n", "Generator", "HITs", "Cost", "Accepted")

	gens := []struct {
		name string
		g    crowder.Generator
	}{
		{"Random", crowder.GenRandom},
		{"DFS", crowder.GenDFS},
		{"BFS", crowder.GenBFS},
		{"Approx", crowder.GenApprox},
		{"TwoTiered", crowder.GenTwoTiered},
	}
	for _, gen := range gens {
		res, err := crowder.Resolve(table, crowder.Options{
			Threshold:   0.35, // the paper's Restaurant setting
			ClusterSize: 10,
			Generator:   gen.g,
			Oracle:      oracle,
			Seed:        1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %8d %9.2f$ %12d\n",
			gen.name, res.HITs, res.CostDollars, len(res.Accepted()))
	}
}
