// Quickstart: run the hybrid human–machine workflow on the paper's Table 1
// — nine product records in which r1, r2 and r7 describe the same iPad and
// r3/r4 the same iPhone.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	crowder "github.com/crowder/crowder"
)

func main() {
	table := crowder.NewTable("product_name", "price")
	table.Append("iPad Two 16GB WiFi White", "$490")               // r1
	table.Append("iPad 2nd generation 16GB WiFi White", "$469")    // r2
	table.Append("iPhone 4th generation White 16GB", "$545")       // r3
	table.Append("Apple iPhone 4 16GB White", "$520")              // r4
	table.Append("Apple iPhone 3rd generation Black 16GB", "$375") // r5
	table.Append("iPhone 4 32GB White", "$599")                    // r6
	table.Append("Apple iPad2 16GB WiFi White", "$499")            // r7
	table.Append("Apple iPod shuffle 2GB Blue", "$49")             // r8
	table.Append("Apple iPod shuffle USB Cable", "$19")            // r9

	// The crowd is simulated, so we hand it the reference labels it will
	// (noisily) reproduce. A live deployment would post real HITs instead.
	oracle := []crowder.Pair{{A: 0, B: 1}, {A: 0, B: 6}, {A: 1, B: 6}, {A: 2, B: 3}}

	res, err := crowder.Resolve(table, crowder.Options{
		Threshold:   0.3, // machine pass prunes pairs below Jaccard 0.3
		ClusterSize: 4,   // up to four records per cluster-based HIT
		Oracle:      oracle,
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("candidate pairs: %d of %d survived the machine pass\n",
		res.Candidates, res.TotalPairs)
	fmt.Printf("crowd tasks:     %d HITs, $%.2f, %.0f simulated seconds\n",
		res.HITs, res.CostDollars, res.ElapsedSeconds)
	fmt.Println("matches found:")
	for _, m := range res.Accepted() {
		fmt.Printf("  %v = %v  (confidence %.2f)\n",
			table.Record(m.Pair.A)[0], table.Record(m.Pair.B)[0], m.Confidence)
	}
}
