// Command crowderd runs the crowder engine as a long-running HTTP
// resolution service: tables are incremental resolution sessions, delta
// resolutions run as asynchronous cancellable jobs, and — for tables on
// the queue backend — external crowd workers claim and answer the open
// HITs through the same API. See the package comment of internal/service
// for the endpoint reference and the README's "Service mode" section for
// an end-to-end curl session. One daemon serves many tenants: tables
// carry a tenant label and priority, a shared worker pool drains every
// table through POST /claim with weighted fair scheduling, and resolve
// jobs pass a bounded admission queue (-max-resolves).
//
// With -data-dir set every session is durable: state mutations are
// logged to a per-table WAL with compacting snapshots, and a restarted
// daemon recovers every session — including open HITs and claim leases —
// before it starts serving.
//
//	crowderd -addr :8080 -lease 5m -max-resolves 4 -data-dir /var/lib/crowder
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/crowder/crowder/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	lease := flag.Duration("lease", 5*time.Minute, "claim lease for queue-backend HITs")
	sweep := flag.Duration("sweep", 5*time.Second, "how often to expire lapsed claims")
	maxResolves := flag.Int("max-resolves", 0, "resolve jobs allowed to run concurrently server-wide, FIFO per tenant (0 = default 4)")
	dataDir := flag.String("data-dir", "", "directory for durable session storage (WAL + snapshots); empty = in-memory only")
	flag.Parse()

	srv := service.New(service.Options{Lease: *lease, MaxResolves: *maxResolves, DataDir: *dataDir})

	// Recover persisted sessions before the listener opens: clients must
	// never observe a half-recovered daemon.
	if *dataDir != "" {
		n, err := srv.Recover(context.Background())
		if err != nil {
			log.Fatalf("recovering sessions from %s: %v", *dataDir, err)
		}
		log.Printf("recovered %d session(s) from %s", n, *dataDir)
	}

	// Expire lapsed claims even when no worker traffic arrives, so
	// in-flight jobs hear about expiries and top up replication promptly.
	sweepCtx, stopSweep := context.WithCancel(context.Background())
	defer stopSweep()
	go func() {
		t := time.NewTicker(*sweep)
		defer t.Stop()
		for {
			select {
			case <-sweepCtx.Done():
				return
			case <-t.C:
				srv.SweepQueues()
			}
		}
	}()

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("crowderd listening on %s (lease %s)", *addr, *lease)
		errCh <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case s := <-sig:
		log.Printf("received %v; shutting down", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}
}
