// Command hitgen compares the cluster-based HIT generation strategies
// (Sections 4, 5 and 7.2) on a built-in dataset: number of HITs, worker
// comparisons implied by the Section 6 model, and generation time.
//
// Usage:
//
//	hitgen [-dataset restaurant|product] [-threshold 0.1] [-k 10] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"github.com/crowder/crowder/internal/dataset"
	"github.com/crowder/crowder/internal/hitgen"
	"github.com/crowder/crowder/internal/simjoin"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hitgen: ")
	var (
		dsName    = flag.String("dataset", "restaurant", "dataset: restaurant or product")
		threshold = flag.Float64("threshold", 0.1, "likelihood threshold")
		k         = flag.Int("k", 10, "cluster-size threshold")
		seed      = flag.Int64("seed", 1, "seed for the Random generator")
	)
	flag.Parse()

	var d *dataset.Dataset
	cross := false
	switch strings.ToLower(*dsName) {
	case "restaurant":
		d = dataset.Restaurant(*seed)
	case "product":
		d = dataset.Product(*seed)
		cross = true
	default:
		log.Fatalf("unknown dataset %q", *dsName)
	}

	scored := simjoin.Join(d.Table, simjoin.Options{Threshold: *threshold, CrossSourceOnly: cross})
	pairs := simjoin.Pairs(scored)
	fmt.Printf("%s, threshold %.2f: %d pairs to cover, k = %d\n\n",
		d.Name, *threshold, len(pairs), *k)
	fmt.Printf("%-16s %8s %14s %12s %10s\n", "Generator", "HITs", "Comparisons", "Time", "Valid")

	gens := []hitgen.ClusterGenerator{
		hitgen.Random{Seed: *seed},
		hitgen.DFS{},
		hitgen.BFS{},
		hitgen.Approx{},
		hitgen.TwoTiered{},
		hitgen.TwoTiered{Pack: hitgen.PackFFD},
	}
	for _, g := range gens {
		start := time.Now()
		hits, err := g.Generate(pairs, *k)
		elapsed := time.Since(start)
		if err != nil {
			log.Fatalf("%s: %v", g.Name(), err)
		}
		valid := "yes"
		if err := hitgen.ValidateCover(pairs, hits, *k); err != nil {
			valid = "NO: " + err.Error()
		}
		comps := hitgen.HITSetComparisons(hits, d.Matches)
		fmt.Printf("%-16s %8d %14d %12s %10s\n",
			g.Name(), len(hits), comps, elapsed.Round(time.Millisecond), valid)
	}

	// Pair-based reference: one comparison per pair, ⌈|P|/k⌉ HITs.
	pairHITs, err := hitgen.GeneratePairHITs(pairs, *k)
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, h := range pairHITs {
		total += hitgen.PairHITComparisons(h)
	}
	fmt.Printf("%-16s %8d %14d %12s %10s\n", "Pair-based", len(pairHITs), total, "-", "yes")
}
