// Command experiments regenerates the paper's evaluation: every table and
// figure of Section 7, plus the ablations DESIGN.md calls out.
//
// Usage:
//
//	experiments [-run <id>] [-seed N]
//
// where <id> is one of: table2a, table2b, fig10, fig11, fig12a, fig12b,
// fig13-15, extension, scale, ablations, all (default all).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/crowder/crowder/internal/dataset"
	"github.com/crowder/crowder/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	run := flag.String("run", "all", "experiment id: table2a, table2b, fig10, fig11, fig12a, fig12b, fig13-15, extension, scale, ablations, all")
	seed := flag.Int64("seed", 1, "base RNG seed")
	flag.Parse()

	env := experiments.NewEnv(*seed)
	fmt.Println(env.Restaurant.Stats())
	fmt.Println(env.Product.Stats())
	fmt.Println(env.ProductDup.Stats())
	fmt.Println()

	want := func(id string) bool { return *run == "all" || *run == id }
	start := time.Now()

	if want("table2a") {
		section(env.Table2(env.Restaurant).String())
	}
	if want("table2b") {
		section(env.Table2(env.Product).String())
	}
	if want("fig10") {
		for _, d := range []*dataset.Dataset{env.Restaurant, env.Product} {
			r, err := env.Figure10(d)
			check(err)
			section(r.String())
		}
	}
	if want("fig11") {
		for _, d := range []*dataset.Dataset{env.Restaurant, env.Product} {
			r, err := env.Figure11(d)
			check(err)
			section(r.String())
		}
	}
	if want("fig12a") {
		r, err := env.Figure12(env.Restaurant, 0.35, 10)
		check(err)
		section(r.String())
	}
	if want("fig12b") {
		r, err := env.Figure12(env.Product, 0.2, 10)
		check(err)
		section(r.String())
	}
	if want("fig13-15") {
		for _, d := range []*dataset.Dataset{env.Product, env.ProductDup} {
			r, err := env.PairVsCluster(d, 0.2, 10)
			check(err)
			section(r.String())
		}
	}
	if want("extension") {
		for _, cfg := range []struct {
			d   *dataset.Dataset
			tau float64
		}{{env.Restaurant, 0.35}, {env.Product, 0.2}} {
			r, err := env.ActiveVsHybrid(cfg.d, cfg.tau, 10)
			check(err)
			section(r.String())
		}
	}
	if want("scale") {
		r, err := env.Scale([]int{858, 1716, 3432, 6864}, 0.2, 300)
		check(err)
		section(r.String())
	}
	if want("ablations") {
		for _, d := range []*dataset.Dataset{env.Restaurant, env.Product} {
			for _, f := range []func(*dataset.Dataset) (*experiments.AblationResult, error){
				env.AblationPacking, env.AblationSeed, env.AblationTieBreak,
			} {
				r, err := f(d)
				check(err)
				section(r.String())
			}
		}
		r, err := env.AblationEM(env.Restaurant, 0.35, 10)
		check(err)
		section(r.String())
	}

	fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))
}

func section(s string) {
	fmt.Println(s)
}

func check(err error) {
	if err != nil {
		log.Println(err)
		os.Exit(1)
	}
}
