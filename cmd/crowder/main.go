// Command crowder runs the hybrid human–machine entity-resolution
// workflow end to end on one of the built-in datasets and reports the
// matches, cost and simulated latency.
//
// Usage:
//
//	crowder [-dataset restaurant|product|table1] [-threshold 0.3]
//	        [-k 10] [-hit cluster|pair] [-gen twotiered|random|bfs|dfs|approx]
//	        [-qt] [-seed 1] [-top 10]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	crowder "github.com/crowder/crowder"
	"github.com/crowder/crowder/internal/dataset"
	"github.com/crowder/crowder/internal/record"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("crowder: ")
	var (
		dsName    = flag.String("dataset", "table1", "dataset: restaurant, product, or table1")
		threshold = flag.Float64("threshold", 0.3, "likelihood threshold for the machine pass")
		k         = flag.Int("k", 10, "cluster-size threshold (records per cluster HIT / pairs per pair HIT)")
		hitType   = flag.String("hit", "cluster", "HIT type: cluster or pair")
		genName   = flag.String("gen", "twotiered", "cluster generator: twotiered, random, bfs, dfs, approx")
		qt        = flag.Bool("qt", false, "require the qualification test")
		seed      = flag.Int64("seed", 1, "simulation seed")
		top       = flag.Int("top", 10, "accepted matches to print")
	)
	flag.Parse()

	src, cross, err := loadDataset(*dsName, *seed)
	if err != nil {
		log.Fatal(err)
	}
	table := crowder.NewTable(src.Table.Schema...)
	for i := range src.Table.Records {
		if cross {
			table.AppendFrom(src.Table.Source[i], src.Table.Records[i].Values...)
		} else {
			table.Append(src.Table.Records[i].Values...)
		}
	}
	var oracle []crowder.Pair
	for p := range src.Matches {
		oracle = append(oracle, crowder.Pair{A: int(p.A), B: int(p.B)})
	}

	opts := crowder.Options{
		Threshold:         *threshold,
		ClusterSize:       *k,
		QualificationTest: *qt,
		CrossSourceOnly:   cross,
		Oracle:            oracle,
		Seed:              *seed,
	}
	switch strings.ToLower(*hitType) {
	case "cluster":
		opts.HITType = crowder.ClusterHITs
	case "pair":
		opts.HITType = crowder.PairHITs
	default:
		log.Fatalf("unknown HIT type %q", *hitType)
	}
	switch strings.ToLower(*genName) {
	case "twotiered":
		opts.Generator = crowder.GenTwoTiered
	case "random":
		opts.Generator = crowder.GenRandom
	case "bfs":
		opts.Generator = crowder.GenBFS
	case "dfs":
		opts.Generator = crowder.GenDFS
	case "approx":
		opts.Generator = crowder.GenApprox
	default:
		log.Fatalf("unknown generator %q", *genName)
	}

	fmt.Println(src.Stats())
	res, err := crowder.Resolve(table, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("machine pass: %d of %d pairs survived threshold %.2f\n",
		res.Candidates, res.TotalPairs, *threshold)
	fmt.Printf("crowd: %d HITs, $%.2f, %.1f simulated minutes\n",
		res.HITs, res.CostDollars, res.ElapsedSeconds/60)

	accepted := res.Accepted()
	correct := 0
	for _, m := range accepted {
		if src.Matches.Has(record.ID(m.Pair.A), record.ID(m.Pair.B)) {
			correct++
		}
	}
	if len(accepted) > 0 {
		fmt.Printf("accepted %d pairs: precision %.1f%%, recall %.1f%%\n",
			len(accepted),
			100*float64(correct)/float64(len(accepted)),
			100*float64(correct)/float64(src.Matches.Len()))
	}
	n := *top
	if n > len(accepted) {
		n = len(accepted)
	}
	for _, m := range accepted[:n] {
		fmt.Printf("  %.2f  %q = %q\n", m.Confidence,
			head(table.Record(m.Pair.A)), head(table.Record(m.Pair.B)))
	}
}

func loadDataset(name string, seed int64) (*dataset.Dataset, bool, error) {
	switch strings.ToLower(name) {
	case "restaurant":
		return dataset.Restaurant(seed), false, nil
	case "product":
		return dataset.Product(seed), true, nil
	case "table1":
		return dataset.PaperTable1(), false, nil
	default:
		return nil, false, fmt.Errorf("unknown dataset %q (want restaurant, product or table1)", name)
	}
}

func head(values []string) string {
	if len(values) == 0 {
		return ""
	}
	return values[0]
}
