package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	crowder "github.com/crowder/crowder"
	"github.com/crowder/crowder/internal/aggregate"
	"github.com/crowder/crowder/internal/dataset"
	"github.com/crowder/crowder/internal/record"
)

// The gate functions run here on scaled-down workloads so the CI race
// matrix exercises the same code paths the bench jobs pin on the full
// reference datasets — a bench that only runs in its own job can rot
// unnoticed until the job breaks.

func TestPercentile(t *testing.T) {
	ms := []float64{5, 1, 4, 2, 3}
	cases := []struct{ q, want float64 }{
		{0.50, 3}, {0.99, 5}, {0.20, 1}, {1.0, 5},
	}
	for _, tc := range cases {
		if got := percentile(ms, tc.q); got != tc.want {
			t.Errorf("percentile(%v) = %v; want %v", tc.q, got, tc.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile(nil) = %v; want 0", got)
	}
}

func TestSparseWorkloadShape(t *testing.T) {
	answers, rejected, workers := sparseWorkload(3, 2)
	if workers != 15 {
		t.Errorf("workers = %d; want 15 (5 cohorts of 3)", workers)
	}
	if len(rejected) != 4 {
		t.Errorf("rejected pairs = %d; want 4 (2 cohorts x 2 pairs)", len(rejected))
	}
	// 3 cohorts x 10 pairs x 3 answers + 2 cohorts x 2 pairs x 3 answers.
	if want := 3*10*3 + 2*2*3; len(answers) != want {
		t.Errorf("answers = %d; want %d", len(answers), want)
	}
	// Every rejected pair is unanimously false; every other pair
	// unanimously true.
	for _, a := range answers {
		isRejected := false
		for _, p := range rejected {
			if a.Pair == p {
				isRejected = true
			}
		}
		if a.Match == isRejected {
			t.Fatalf("answer %+v contradicts the workload's design", a)
		}
	}
}

func TestUnanimousInversions(t *testing.T) {
	mk := func(a, b int) record.Pair { return record.MakePair(record.ID(a), record.ID(b)) }
	answers := []aggregate.Answer{
		{Pair: mk(0, 1), Worker: 1, Match: true},
		{Pair: mk(0, 1), Worker: 2, Match: true},
		{Pair: mk(2, 3), Worker: 1, Match: false},
		{Pair: mk(2, 3), Worker: 2, Match: false},
		{Pair: mk(4, 5), Worker: 1, Match: true}, // split: not unanimous
		{Pair: mk(4, 5), Worker: 2, Match: false},
	}
	post := aggregate.Posterior{
		mk(0, 1): 0.2,  // inverts the unanimous yes
		mk(2, 3): 0.91, // inverts the unanimous no
		mk(4, 5): 0.99, // split pair: never counted
	}
	inv, unan, worst := unanimousInversions(answers, post)
	if inv != 2 || unan != 2 {
		t.Errorf("inversions = %d over %d unanimous pairs; want 2 over 2", inv, unan)
	}
	if worst != 0.91 {
		t.Errorf("worst rejected posterior = %v; want 0.91", worst)
	}
	if inv, _, _ := unanimousInversions(answers, aggregate.Posterior{
		mk(0, 1): 0.9, mk(2, 3): 0.1, mk(4, 5): 0.5,
	}); inv != 0 {
		t.Errorf("faithful posterior counted %d inversions", inv)
	}
}

// runAggregate on a scaled-down restaurant workload: the full gate
// logic — sparse inversions, F1 comparison, calibration buckets, and
// the k-batch equality — on a table small enough for the race matrix.
func TestRunAggregateSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("bench gate")
	}
	workloads := []aggWorkload{{"restaurant", dataset.RestaurantN(3, 300, 60), 0.4}}
	rep, ok := runAggregate(workloads, dataset.RestaurantN(5, 200, 40))
	if !ok {
		t.Fatalf("aggregation gate failed on the small workload: %+v", rep)
	}
	if rep.Sparse.InversionsMAP != 0 {
		t.Errorf("MAP inverted %d unanimous verdicts", rep.Sparse.InversionsMAP)
	}
	if rep.Sparse.InversionsDefault == 0 {
		t.Error("sparse workload no longer reproduces the default-aggregator degeneracy")
	}
	if rep.Sparse.WorstRejectedPosteriorDefault <= 0.5 {
		t.Errorf("degenerate default posterior = %v; the pinned bug drives it past 0.5", rep.Sparse.WorstRejectedPosteriorDefault)
	}
	if rep.Sparse.WorstRejectedPosteriorMAP > 0.5 {
		t.Errorf("MAP worst rejected posterior = %v; must stay ≤ 0.5", rep.Sparse.WorstRejectedPosteriorMAP)
	}
	if len(rep.Runs) != 1 || rep.Runs[0].F1MAP < rep.Runs[0].F1Default {
		t.Errorf("runs = %+v; want one restaurant run at equal-or-better F1", rep.Runs)
	}
	if !rep.DeltaEqualsScratch {
		t.Error("k-batch MAP session differs from from-scratch")
	}
	for _, calib := range [][]aggregate.CalibrationBucket{rep.Runs[0].CalibrationDefault, rep.Runs[0].CalibrationMAP} {
		if len(calib) != 10 {
			t.Fatalf("calibration has %d buckets; want 10", len(calib))
		}
		for _, b := range calib {
			if b.Pairs > 0 && (b.MeanPosterior < b.Lo || b.MeanPosterior > b.Hi) {
				t.Errorf("bucket [%v,%v) reports mean posterior %v outside its range", b.Lo, b.Hi, b.MeanPosterior)
			}
		}
	}
}

// runDelta on a small base: the incremental gate's plumbing — identical
// matches, zero re-issued HITs — holds on any size.
func TestRunDeltaSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("bench gate")
	}
	rep, ok := runDelta(300, 30, 2, 0)
	if !ok {
		t.Fatalf("delta gate failed on the small workload: %+v", rep)
	}
	if !rep.MatchesIdentical {
		t.Error("small delta session diverged from the union resolve")
	}
	if rep.ReissuedHITs != 0 {
		t.Errorf("small delta session re-issued %d HITs", rep.ReissuedHITs)
	}
	if len(rep.DeltaResolveNs) != 2 {
		t.Errorf("recorded %d delta timings; want 2", len(rep.DeltaResolveNs))
	}
}

// runServe on a small base: the service bench's append→resolve→poll
// round-trip and its library-equality gate.
func TestRunServeSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("bench gate")
	}
	rep, ok := runServe(80, 10, 2, 40)
	if !ok {
		t.Fatalf("serve gate failed on the small workload: %+v", rep)
	}
	if !rep.MatchesIdentical {
		t.Error("service matches diverged from library-mode Resolve")
	}
	if rep.MatchReads != 40 || rep.MatchReadRPS <= 0 {
		t.Errorf("read-path stats look wrong: %+v", rep)
	}
	if rep.ResolveRoundP99Ms < rep.ResolveRoundP50Ms {
		t.Errorf("p99 %.3fms below p50 %.3fms", rep.ResolveRoundP99Ms, rep.ResolveRoundP50Ms)
	}
}

// runScale on small workloads: the streaming gates — bytes/op reduction,
// stream ≡ materialized, delta ≡ scratch, full recall on the synthetic
// scale dataset — hold at any size.
func TestRunScaleSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("bench gate")
	}
	rep, ok := runScale(1200, 8000, 200, 8192)
	if !ok {
		t.Fatalf("scale gate failed on the small workload: %+v", rep)
	}
	if !rep.StreamEqualsMaterialized {
		t.Error("streamed candidates diverged from the materialized path")
	}
	if !rep.DeltaEqualsScratch {
		t.Error("two-batch delta union diverged from the one-shot join")
	}
	if rep.BytesReduction < 0.5 {
		t.Errorf("bytes reduction = %.3f; gate requires >= 0.5", rep.BytesReduction)
	}
	if rep.ScaleMatchRecall != 1 {
		t.Errorf("scale recall = %v; every planted duplicate must be found", rep.ScaleMatchRecall)
	}
	if rep.CompressionRatio <= 1 {
		t.Errorf("compressed postings (%d B) not smaller than flat (%d B)", rep.PostingsBytes, rep.FlatBytes)
	}
}

func TestPeakRSSMB(t *testing.T) {
	if _, err := os.Stat("/proc/self/status"); err != nil {
		t.Skip("no /proc")
	}
	if got := peakRSSMB(); got <= 0 {
		t.Errorf("peakRSSMB = %v; want positive on Linux", got)
	}
}

func TestWriteJSONFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	writeJSON(path, map[string]int{"a": 1}, "wrote")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "{\n  \"a\": 1\n}\n" {
		t.Errorf("writeJSON wrote %q", data)
	}
}

func TestTransitiveF1(t *testing.T) {
	truth := record.NewPairSet()
	truth.Add(0, 1)
	if got := transitiveF1(truth, &crowder.Result{}); got != 0 {
		t.Errorf("F1 with no accepted matches = %v; want 0", got)
	}
	perfect := &crowder.Result{Matches: []crowder.Match{{Pair: crowder.Pair{A: 0, B: 1}, Confidence: 0.9}}}
	if got := transitiveF1(truth, perfect); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect single-match F1 = %v; want 1", got)
	}
}

func TestMatchesEqual(t *testing.T) {
	a := []tenantMatch{{A: 1, B: 2, Confidence: 1}, {A: 3, B: 4, Confidence: 0.5}}
	b := []tenantMatch{{A: 1, B: 2, Confidence: 1}, {A: 3, B: 4, Confidence: 0.5}}
	if !matchesEqual(a, b) {
		t.Error("identical lists reported unequal")
	}
	if matchesEqual(a, b[:1]) {
		t.Error("length mismatch reported equal")
	}
	b[1].Confidence = 0.25
	if matchesEqual(a, b) {
		t.Error("confidence drift reported equal — the identity gate must be exact")
	}
}

// TestTenantGroupRoundTrip drives the tenant bench's group runner on a
// tiny two-tenant workload: the shared pool must drain every resolve,
// the dispatcher stats must show traffic for both tables, and a tenant's
// matches must be bit-identical to the same spec run alone.
func TestTenantGroupRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("boots servers and a worker pool")
	}
	mk := func(seed int64, table string) *tenantSpec {
		d := dataset.RestaurantN(seed, 30, 5)
		sp := &tenantSpec{
			table: table, tenant: table, priority: 1,
			schema: d.Table.Schema, truth: d.Matches,
			rounds: 1, clusterSize: 5, threshold: 0.4, seed: seed,
		}
		for j := range d.Table.Records {
			sp.rows = append(sp.rows, d.Table.Records[j].Values)
		}
		return sp
	}
	// 3 workers minimum: each HIT wants 3 assignments and the queue
	// hands a given HIT to a given worker at most once.
	specs := []*tenantSpec{mk(7, "ta"), mk(8, "tb")}
	matches, runs := runGroup(specs, 3)
	for _, sp := range specs {
		run, ok := runs[sp.table]
		if !ok {
			t.Fatalf("no dispatcher stats for %s", sp.table)
		}
		if run.Claims == 0 || run.HITs == 0 {
			t.Errorf("%s: claims=%d hits=%d; want both > 0", sp.table, run.Claims, run.HITs)
		}
		if run.Matches != len(matches[sp.table]) {
			t.Errorf("%s: stats report %d matches, list has %d", sp.table, run.Matches, len(matches[sp.table]))
		}
	}
	solo, _ := runGroup([]*tenantSpec{mk(7, "ta")}, 3)
	if !matchesEqual(matches["ta"], solo["ta"]) {
		t.Error("ta: matches under a shared pool differ from the isolated run")
	}
}
