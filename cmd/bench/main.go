// Command bench records the repository's performance baseline: ns/op for
// the similarity join (the seed repo's legacy map-of-strings path, the
// interned sequential path, and the sharded parallel path) and for the
// end-to-end Resolve workflow. It writes the results as JSON so the
// speedups of this and future PRs are pinned in the repository.
//
//	go run ./cmd/bench                 # prints JSON to stdout
//	go run ./cmd/bench -o BENCH_baseline.json
//
// With -delta it instead benchmarks the incremental resolver: small
// record batches appended to a large already-resolved table, comparing
// each ResolveDelta against a from-scratch Resolve of the union. The run
// fails (exit 1) unless the delta path is at least -min-speedup× faster,
// produces bit-identical matches, and re-issues zero HITs for
// already-judged pairs.
//
//	go run ./cmd/bench -delta -o BENCH_incremental.json
//
// With -serve it benchmarks the crowderd service path: a local HTTP
// daemon absorbs append→resolve→poll→matches round-trips, reporting
// requests/sec and p50/p99 latencies. The run fails (exit 1) unless the
// matches the service returns are bit-identical to a library-mode
// Resolve of the same table — the service smoke check.
//
//	go run ./cmd/bench -serve -o BENCH_service.json
//
// With -transitive it benchmarks the transitivity-aware adaptive
// scheduler on the Restaurant and Product(+Dup) datasets: each dataset
// resolves once with Options.Transitivity off and once on, recording
// HITs posted, pairs deduced, crowd cost and F1 against ground truth.
// The run fails (exit 1) unless transitivity posts strictly fewer HITs
// at equal-or-better F1 on every dataset, and unless a k-batch
// incremental session with transitivity reproduces the from-scratch
// transitive resolution.
//
//	go run ./cmd/bench -transitive -o BENCH_transitive.json
//
// With -hybrid it gates the hybrid human–machine router on the same
// two workloads, run as batched incremental sessions: with Hybrid on,
// the session-lifetime HIT count (including the trailing audit deltas)
// must fall by at least 40% at equal-or-better F1 versus the identical
// crowd-only session, the router must resolve a nonzero share of
// candidates by machine, and the whole session must be bit-identical
// across reruns and shard counts.
//
//	go run ./cmd/bench -hybrid -o BENCH_hybrid.json
//
// With -aggregate it gates the DawidSkeneMAP aggregator against the
// sparse-coverage degeneracy (see ROADMAP): on the single-round-worker
// stress workload the MAP aggregator must invert zero unanimous
// verdicts (plain Dawid–Skene inverts them — the pinned bug), it must
// score equal-or-better F1 than the default aggregator on the
// Restaurant and Product datasets, and a k-batch incremental session
// under MAP must reproduce the from-scratch MAP resolution bit for
// bit. The report includes posterior-vs-empirical-precision
// calibration buckets for both aggregators.
//
//	go run ./cmd/bench -aggregate -o BENCH_aggregate.json
//
// With -shard it benchmarks the sharded resolution path: the synthetic
// scale workload joined from scratch with P shards on P procs for
// P ∈ {1,2,4,8}, plus full crowd resolutions of the same table at
// shard counts 0/1/2/4/8. The run fails (exit 1) unless every sharded
// output — ranked candidates, matches, HIT counts, deduced pairs — is
// bit-identical to the unsharded run, and (on multi-core hosts) unless
// the sweep reaches min(4, NumCPU/2)× speedup.
//
//	go run ./cmd/bench -shard -o BENCH_shard.json
//
// All modes accept -cpuprofile/-memprofile and, for lock-contention
// work, -mutexprofile/-blockprofile (full-rate mutex and blocking
// profiles written at exit). Pipeline stages are labeled with pprof
// labels ("stage"), so profiles attribute samples to prune/generate/
// execute/aggregate directly.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	crowder "github.com/crowder/crowder"
	"github.com/crowder/crowder/internal/aggregate"
	"github.com/crowder/crowder/internal/dataset"
	"github.com/crowder/crowder/internal/eval"
	"github.com/crowder/crowder/internal/record"
	"github.com/crowder/crowder/internal/service"
	"github.com/crowder/crowder/internal/simjoin"
)

// Benchmark is one recorded measurement.
type Benchmark struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	// SpeedupVsSeed is NsPerOp of the seed baseline divided by this
	// benchmark's NsPerOp, where a seed baseline exists (simjoin rows).
	SpeedupVsSeed float64 `json:"speedup_vs_seed,omitempty"`
}

// Baseline is the file layout of BENCH_baseline.json.
type Baseline struct {
	GoVersion  string      `json:"go_version"`
	NumCPU     int         `json:"num_cpu"`
	GoMaxProcs int         `json:"go_max_procs"`
	Records    int         `json:"records"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func measure(name string, f func(b *testing.B)) Benchmark {
	r := testing.Benchmark(f)
	return Benchmark{
		Name:        name,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// DeltaReport is the file layout of BENCH_incremental.json.
type DeltaReport struct {
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"go_max_procs"`

	BaseRecords int     `json:"base_records"`
	BatchSize   int     `json:"batch_size"`
	Batches     int     `json:"batches"`
	Threshold   float64 `json:"threshold"`

	// FullResolveNs is a from-scratch Resolve of the final union table.
	FullResolveNs int64 `json:"full_resolve_ns"`
	// DeltaResolveNs lists each 100-record ResolveDelta's wall time.
	DeltaResolveNs     []int64 `json:"delta_resolve_ns"`
	DeltaResolveNsMean int64   `json:"delta_resolve_ns_mean"`
	// Speedup is FullResolveNs / DeltaResolveNsMean.
	Speedup float64 `json:"speedup"`

	// MatchesIdentical reports whether the final incremental Matches are
	// bit-identical to the from-scratch union resolve.
	MatchesIdentical bool `json:"matches_identical"`
	// ReissuedHITs counts delta HITs beyond what the genuinely new
	// candidate pairs required — zero means cached verdicts fully
	// shielded already-judged pairs from the crowd.
	ReissuedHITs int `json:"reissued_hits"`

	SessionHITs          int   `json:"session_hits"`
	FullHITs             int   `json:"full_hits"`
	NewCandidatesByBatch []int `json:"new_candidates_by_batch"`
	JudgedPairs          int   `json:"judged_pairs"`
}

// runDelta benchmarks the incremental resolver and enforces its
// acceptance criteria, returning the report and whether they held.
func runDelta(base, batch, batches int, minSpeedup float64) (*DeltaReport, bool) {
	if base < 1 || batch < 1 || batches < 1 {
		log.Fatalf("delta mode needs -base, -batch and -batches >= 1 (got %d, %d, %d)", base, batch, batches)
	}
	const tau = 0.5
	total := base + batch*batches
	d := dataset.RestaurantN(3, total, total/10)
	rows := make([][]string, d.Table.Len())
	for i := range d.Table.Records {
		rows[i] = d.Table.Records[i].Values
	}
	var oracle []crowder.Pair
	for _, p := range d.Matches.Slice() {
		oracle = append(oracle, crowder.Pair{A: int(p.A), B: int(p.B)})
	}
	opts := crowder.Options{
		Threshold:   tau,
		HITType:     crowder.PairHITs,
		ClusterSize: 10,
		Oracle:      oracle,
		Seed:        1,
	}

	rep := &DeltaReport{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),

		BaseRecords: base,
		BatchSize:   batch,
		Batches:     batches,
		Threshold:   tau,
	}

	// Incremental session: resolve the base table once (untimed — that is
	// the long-lived service's steady state), then time each delta batch.
	rv, err := crowder.NewResolver(crowder.NewTable(d.Table.Schema...), opts)
	if err != nil {
		log.Fatal(err)
	}
	rv.AppendBatch(rows[:base]...)
	baseRes, err := rv.ResolveDelta()
	if err != nil {
		log.Fatal(err)
	}
	rep.SessionHITs = baseRes.HITs

	var last *crowder.Result
	var totalDelta int64
	for b := 0; b < batches; b++ {
		lo := base + b*batch
		rv.AppendBatch(rows[lo : lo+batch]...)
		start := time.Now()
		last, err = rv.ResolveDelta()
		if err != nil {
			log.Fatal(err)
		}
		ns := time.Since(start).Nanoseconds()
		rep.DeltaResolveNs = append(rep.DeltaResolveNs, ns)
		totalDelta += ns
		rep.SessionHITs += last.HITs
		rep.NewCandidatesByBatch = append(rep.NewCandidatesByBatch, last.NewCandidates)
		// Pair-based HITs pack ClusterSize new pairs per task: any HIT
		// beyond ⌈new/k⌉ would mean an already-judged pair went back to
		// the crowd.
		need := (last.NewCandidates + opts.ClusterSize - 1) / opts.ClusterSize
		rep.ReissuedHITs += last.HITs - need
	}
	rep.DeltaResolveNsMean = totalDelta / int64(batches)
	rep.JudgedPairs = rv.JudgedPairs()

	// From-scratch baseline over the same final union table.
	union := crowder.NewTable(d.Table.Schema...)
	for _, row := range rows {
		union.Append(row...)
	}
	start := time.Now()
	full, err := crowder.Resolve(union, opts)
	if err != nil {
		log.Fatal(err)
	}
	rep.FullResolveNs = time.Since(start).Nanoseconds()
	rep.FullHITs = full.HITs
	rep.Speedup = float64(rep.FullResolveNs) / float64(rep.DeltaResolveNsMean)

	rep.MatchesIdentical = len(full.Matches) == len(last.Matches)
	if rep.MatchesIdentical {
		for i := range full.Matches {
			if full.Matches[i] != last.Matches[i] {
				rep.MatchesIdentical = false
				break
			}
		}
	}

	ok := true
	if !rep.MatchesIdentical {
		fmt.Fprintln(os.Stderr, "FAIL: incremental matches differ from the from-scratch union resolve")
		ok = false
	}
	if rep.ReissuedHITs != 0 {
		fmt.Fprintf(os.Stderr, "FAIL: %d HITs re-issued for already-judged pairs\n", rep.ReissuedHITs)
		ok = false
	}
	if rep.Speedup < minSpeedup {
		fmt.Fprintf(os.Stderr, "FAIL: delta speedup %.2fx below required %.2fx\n", rep.Speedup, minSpeedup)
		ok = false
	}
	return rep, ok
}

// ServiceReport is the file layout of BENCH_service.json.
type ServiceReport struct {
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"go_max_procs"`

	BaseRecords int `json:"base_records"`
	BatchSize   int `json:"batch_size"`
	Rounds      int `json:"rounds"`

	// Append+resolve+poll round-trip latency (one delta resolution job
	// end to end over HTTP).
	ResolveRoundMeanMs float64 `json:"resolve_round_mean_ms"`
	ResolveRoundP50Ms  float64 `json:"resolve_round_p50_ms"`
	ResolveRoundP99Ms  float64 `json:"resolve_round_p99_ms"`
	ResolveRoundsPerS  float64 `json:"resolve_rounds_per_sec"`

	// Read-path throughput: concurrent GET /matches.
	MatchReads        int     `json:"match_reads"`
	MatchReadRPS      float64 `json:"match_read_rps"`
	MatchReadP50Ms    float64 `json:"match_read_p50_ms"`
	MatchReadP99Ms    float64 `json:"match_read_p99_ms"`
	MatchReadClients  int     `json:"match_read_clients"`
	MatchesIdentical  bool    `json:"matches_identical"`
	SessionHITs       int     `json:"session_hits"`
	SessionCandidates int     `json:"session_candidates"`
}

// percentile returns the nearest-rank percentile (ceil convention), so
// small samples report their tail honestly: p99 of 5 samples is the
// maximum, not the second-largest.
func percentile(ms []float64, q float64) float64 {
	if len(ms) == 0 {
		return 0
	}
	s := append([]float64(nil), ms...)
	sort.Float64s(s)
	i := int(math.Ceil(q*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// benchCall issues one JSON request against the bench service and decodes
// the response.
func benchCall(client *http.Client, method, url string, body, out any) error {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return err
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("%s %s: %d %v", method, url, resp.StatusCode, e)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// runServe benchmarks a local crowderd: timed append+resolve+poll rounds
// against a simulated-backend table, then concurrent match reads, then
// the equality gate against library-mode Resolve.
func runServe(base, batch, rounds, reads int) (*ServiceReport, bool) {
	if base < 1 || batch < 1 || rounds < 1 {
		log.Fatalf("serve mode needs -base, -batch and -rounds >= 1 (got %d, %d, %d)", base, batch, rounds)
	}
	const tau = 0.5
	total := base + batch*rounds
	d := dataset.RestaurantN(3, total, total/10)
	rows := make([][]string, d.Table.Len())
	for i := range d.Table.Records {
		rows[i] = d.Table.Records[i].Values
	}
	var oracle [][2]int
	var libOracle []crowder.Pair
	for _, p := range d.Matches.Slice() {
		oracle = append(oracle, [2]int{int(p.A), int(p.B)})
		libOracle = append(libOracle, crowder.Pair{A: int(p.A), B: int(p.B)})
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: service.New(service.Options{})}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()
	url := "http://" + ln.Addr().String()
	client := &http.Client{}

	rep := &ServiceReport{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),

		BaseRecords: base,
		BatchSize:   batch,
		Rounds:      rounds,
		MatchReads:  reads,
	}

	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(benchCall(client, "POST", url+"/tables/bench", map[string]any{
		"schema": d.Table.Schema,
		"options": map[string]any{
			"threshold": tau, "hit_type": "pair", "cluster_size": 10,
			"seed": 1, "oracle": oracle,
		},
	}, nil))

	// resolveRound appends a slice of rows (if any), starts a resolution
	// job and polls it to completion, returning total HITs and candidates.
	resolveRound := func(lo, hi int) {
		if hi > lo {
			must(benchCall(client, "POST", url+"/tables/bench/records",
				map[string]any{"rows": rows[lo:hi]}, nil))
		}
		var kicked struct {
			Job int `json:"job"`
		}
		must(benchCall(client, "POST", url+"/tables/bench/resolve", map[string]any{}, &kicked))
		for {
			var status struct {
				State  string `json:"state"`
				Error  string `json:"error"`
				Result struct {
					HITs       int `json:"hits"`
					Candidates int `json:"candidates"`
				} `json:"result"`
			}
			must(benchCall(client, "GET", fmt.Sprintf("%s/tables/bench/jobs/%d", url, kicked.Job), nil, &status))
			switch status.State {
			case "done":
				rep.SessionHITs += status.Result.HITs
				rep.SessionCandidates = status.Result.Candidates
				return
			case "running", "queued":
				time.Sleep(time.Millisecond)
			default:
				log.Fatalf("job %d ended %s: %s", kicked.Job, status.State, status.Error)
			}
		}
	}

	// Untimed: the steady-state base resolution.
	resolveRound(0, base)

	// Timed: append+resolve+poll rounds.
	var roundMs []float64
	start := time.Now()
	for r := 0; r < rounds; r++ {
		lo := base + r*batch
		t0 := time.Now()
		resolveRound(lo, lo+batch)
		roundMs = append(roundMs, float64(time.Since(t0).Microseconds())/1000)
	}
	elapsed := time.Since(start).Seconds()
	var sum float64
	for _, ms := range roundMs {
		sum += ms
	}
	rep.ResolveRoundMeanMs = sum / float64(rounds)
	rep.ResolveRoundP50Ms = percentile(roundMs, 0.50)
	rep.ResolveRoundP99Ms = percentile(roundMs, 0.99)
	rep.ResolveRoundsPerS = float64(rounds) / elapsed

	// Read path: concurrent GET /matches.
	const clients = 8
	rep.MatchReadClients = clients
	readMs := make([]float64, reads)
	var wg sync.WaitGroup
	readStart := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < reads; i += clients {
				t0 := time.Now()
				if err := benchCall(client, "GET", url+"/tables/bench/matches?min=0.5", nil, &map[string]any{}); err != nil {
					log.Fatal(err)
				}
				readMs[i] = float64(time.Since(t0).Microseconds()) / 1000
			}
		}(c)
	}
	wg.Wait()
	rep.MatchReadRPS = float64(reads) / time.Since(readStart).Seconds()
	rep.MatchReadP50Ms = percentile(readMs, 0.50)
	rep.MatchReadP99Ms = percentile(readMs, 0.99)

	// Equality gate: the service's matches must equal library-mode
	// resolution of the same table.
	var got struct {
		Matches []struct {
			A          int     `json:"a"`
			B          int     `json:"b"`
			Confidence float64 `json:"confidence"`
		} `json:"matches"`
	}
	must(benchCall(client, "GET", url+"/tables/bench/matches", nil, &got))
	union := crowder.NewTable(d.Table.Schema...)
	for _, row := range rows {
		union.Append(row...)
	}
	want, err := crowder.Resolve(union, crowder.Options{
		Threshold: tau, HITType: crowder.PairHITs, ClusterSize: 10,
		Oracle: libOracle, Seed: 1,
	})
	must(err)
	rep.MatchesIdentical = len(got.Matches) == len(want.Matches)
	if rep.MatchesIdentical {
		for i, m := range want.Matches {
			if got.Matches[i].A != m.Pair.A || got.Matches[i].B != m.Pair.B || got.Matches[i].Confidence != m.Confidence {
				rep.MatchesIdentical = false
				break
			}
		}
	}

	ok := true
	if !rep.MatchesIdentical {
		fmt.Fprintln(os.Stderr, "FAIL: service matches differ from library-mode Resolve of the same table")
		ok = false
	}
	return rep, ok
}

// TransitiveRun is one dataset's off-vs-on comparison in
// BENCH_transitive.json.
type TransitiveRun struct {
	Dataset    string  `json:"dataset"`
	Records    int     `json:"records"`
	Threshold  float64 `json:"threshold"`
	Candidates int     `json:"candidates"`

	HITsOff int     `json:"hits_off"`
	HITsOn  int     `json:"hits_on"`
	CostOff float64 `json:"cost_off_dollars"`
	CostOn  float64 `json:"cost_on_dollars"`
	F1Off   float64 `json:"f1_off"`
	F1On    float64 `json:"f1_on"`

	DeducedPairs  int `json:"deduced_pairs"`
	HITsSaved     int `json:"hits_saved"`
	RetractedHITs int `json:"retracted_hits"`
}

// TransitiveReport is the file layout of BENCH_transitive.json.
type TransitiveReport struct {
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"go_max_procs"`

	Runs []TransitiveRun `json:"runs"`
	// DeltaEqualsScratch reports whether a k-batch incremental session
	// with transitivity reproduced the from-scratch transitive Matches
	// bit-for-bit on the heavy-transitivity workload.
	DeltaEqualsScratch bool `json:"delta_equals_scratch"`
}

// transitiveF1 scores accepted matches against ground truth.
func transitiveF1(truth record.PairSet, res *crowder.Result) float64 {
	tp, fp := 0, 0
	for _, m := range res.Accepted() {
		if truth.Has(record.ID(m.Pair.A), record.ID(m.Pair.B)) {
			tp++
		} else {
			fp++
		}
	}
	if tp == 0 {
		return 0
	}
	p := float64(tp) / float64(tp+fp)
	r := float64(tp) / float64(truth.Len())
	return eval.F1(p, r)
}

// runTransitive benchmarks the adaptive transitive scheduler and
// enforces its acceptance criteria: strictly fewer HITs at
// equal-or-better F1 on every dataset, and k-batch ≡ from-scratch.
func runTransitive() (*TransitiveReport, bool) {
	rep := &TransitiveReport{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}

	type workload struct {
		name string
		d    *dataset.Dataset
		tau  float64
	}
	workloads := []workload{
		// Restaurant at τ=0.4: duplicate clusters up to ~15 records plus a
		// borderline hairball — positive chains and negative inference.
		{"restaurant", dataset.RestaurantN(3, 2000, 400), 0.4},
		// Product with injected duplicates (the paper's Figure 15(b)
		// workload): ~74% of candidate pairs are transitively implied. The
		// plain cross-source Product join is almost all 1:1 components with
		// nothing to deduce, so the duplicate-injected variant is the
		// transitivity benchmark.
		{"product+dup", dataset.ProductDup(2, dataset.Product(1)), 0.5},
	}

	ok := true
	for _, w := range workloads {
		var oracle []crowder.Pair
		for _, p := range w.d.Matches.Slice() {
			oracle = append(oracle, crowder.Pair{A: int(p.A), B: int(p.B)})
		}
		build := func() *crowder.Table {
			tab := crowder.NewTable(w.d.Table.Schema...)
			for i := range w.d.Table.Records {
				tab.Append(w.d.Table.Records[i].Values...)
			}
			return tab
		}
		opts := crowder.Options{
			Threshold: w.tau, HITType: crowder.PairHITs, ClusterSize: 10,
			Oracle: oracle, Seed: 1,
		}
		off, err := crowder.Resolve(build(), opts)
		if err != nil {
			log.Fatal(err)
		}
		opts.Transitivity = crowder.TransitivityOn
		on, err := crowder.Resolve(build(), opts)
		if err != nil {
			log.Fatal(err)
		}
		run := TransitiveRun{
			Dataset: w.name, Records: w.d.Table.Len(), Threshold: w.tau,
			Candidates: on.Candidates,
			HITsOff:    off.HITs, HITsOn: on.HITs,
			CostOff: off.CostDollars, CostOn: on.CostDollars,
			F1Off: transitiveF1(w.d.Matches, off), F1On: transitiveF1(w.d.Matches, on),
			DeducedPairs: on.DeducedPairs, HITsSaved: on.HITsSaved,
			RetractedHITs: on.RetractedHITs,
		}
		rep.Runs = append(rep.Runs, run)
		if run.HITsOn >= run.HITsOff {
			fmt.Fprintf(os.Stderr, "FAIL: %s: transitivity posted %d HITs, one-shot %d — no savings\n", w.name, run.HITsOn, run.HITsOff)
			ok = false
		}
		if run.F1On < run.F1Off {
			fmt.Fprintf(os.Stderr, "FAIL: %s: transitive F1 %.4f below one-shot %.4f\n", w.name, run.F1On, run.F1Off)
			ok = false
		}
	}

	// k-batch ≡ from-scratch under transitivity (clean pool: unanimity
	// makes every deduction chain reproducible across batchings).
	d := dataset.ProductDup(2, dataset.Product(1))
	var oracle []crowder.Pair
	for _, p := range d.Matches.Slice() {
		oracle = append(oracle, crowder.Pair{A: int(p.A), B: int(p.B)})
	}
	eqOpts := crowder.Options{
		Threshold: 0.5, HITType: crowder.PairHITs, ClusterSize: 10,
		Oracle: oracle, Seed: 1,
		Transitivity: crowder.TransitivityOn, SpammerRate: crowder.NoSpammers,
	}
	union := crowder.NewTable(d.Table.Schema...)
	for i := range d.Table.Records {
		union.Append(d.Table.Records[i].Values...)
	}
	full, err := crowder.Resolve(union, eqOpts)
	if err != nil {
		log.Fatal(err)
	}
	rv, err := crowder.NewResolver(crowder.NewTable(d.Table.Schema...), eqOpts)
	if err != nil {
		log.Fatal(err)
	}
	var last *crowder.Result
	const batches = 4
	size := (d.Table.Len() + batches - 1) / batches
	for lo := 0; lo < d.Table.Len(); lo += size {
		hi := lo + size
		if hi > d.Table.Len() {
			hi = d.Table.Len()
		}
		for i := lo; i < hi; i++ {
			rv.Append(d.Table.Records[i].Values...)
		}
		if last, err = rv.ResolveDelta(); err != nil {
			log.Fatal(err)
		}
	}
	rep.DeltaEqualsScratch = len(full.Matches) == len(last.Matches)
	if rep.DeltaEqualsScratch {
		for i := range full.Matches {
			if full.Matches[i] != last.Matches[i] {
				rep.DeltaEqualsScratch = false
				break
			}
		}
	}
	if !rep.DeltaEqualsScratch {
		fmt.Fprintln(os.Stderr, "FAIL: k-batch transitive ResolveDelta differs from from-scratch transitive Resolve")
		ok = false
	}
	return rep, ok
}

// SparseAggregateRun is the degeneracy stress workload's off-vs-on
// comparison in BENCH_aggregate.json: cohorts of single-round workers,
// most of whom only ever see true matches, plus cohorts whose whole
// history is unanimously rejected pairs — the answer pattern that makes
// plain Dawid–Skene flip unanimous rejections to confident matches.
type SparseAggregateRun struct {
	Pairs          int `json:"pairs"`
	UnanimousPairs int `json:"unanimous_pairs"`
	Workers        int `json:"workers"`

	// Inversions counts unanimously judged pairs whose aggregated
	// decision contradicts the unanimous verdict. The gate requires
	// zero under MAP; the default estimator's count documents the bug.
	InversionsDefault int `json:"inversions_default"`
	InversionsMAP     int `json:"inversions_map"`

	// WorstRejectedPosterior is the highest posterior either aggregator
	// assigned to a unanimously rejected pair (ideally ≈0; the
	// degeneracy drives the default's to ≈1).
	WorstRejectedPosteriorDefault float64 `json:"worst_rejected_posterior_default"`
	WorstRejectedPosteriorMAP     float64 `json:"worst_rejected_posterior_map"`
}

// AggregateRun is one dataset's default-vs-MAP comparison in
// BENCH_aggregate.json.
type AggregateRun struct {
	Dataset    string  `json:"dataset"`
	Records    int     `json:"records"`
	Threshold  float64 `json:"threshold"`
	Candidates int     `json:"candidates"`

	F1Default float64 `json:"f1_default"`
	F1MAP     float64 `json:"f1_map"`

	CalibrationDefault []aggregate.CalibrationBucket `json:"calibration_default"`
	CalibrationMAP     []aggregate.CalibrationBucket `json:"calibration_map"`
}

// AggregateReport is the file layout of BENCH_aggregate.json.
type AggregateReport struct {
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"go_max_procs"`

	Sparse SparseAggregateRun `json:"sparse"`
	Runs   []AggregateRun     `json:"runs"`
	// DeltaEqualsScratch reports whether a k-batch incremental session
	// under the MAP aggregator reproduced the from-scratch MAP Matches
	// bit for bit.
	DeltaEqualsScratch bool `json:"delta_equals_scratch"`
}

// sparseWorkload synthesizes the degeneracy answer pattern: nMatch
// cohorts of three single-round workers each unanimously confirming
// ten true matches, plus nReject cohorts whose entire history is two
// pairs unanimously judged non-matches. Everyone answers truthfully;
// the failure is the aggregator's alone.
func sparseWorkload(nMatch, nReject int) (answers []aggregate.Answer, rejected []record.Pair, workers int) {
	worker, pid := 0, 0
	for c := 0; c < nMatch; c++ {
		ws := []int{worker, worker + 1, worker + 2}
		worker += 3
		for i := 0; i < 10; i++ {
			p := record.MakePair(record.ID(2*pid), record.ID(2*pid+1))
			pid++
			for _, w := range ws {
				answers = append(answers, aggregate.Answer{Pair: p, Worker: w, Match: true})
			}
		}
	}
	for c := 0; c < nReject; c++ {
		ws := []int{worker, worker + 1, worker + 2}
		worker += 3
		for i := 0; i < 2; i++ {
			p := record.MakePair(record.ID(2*pid), record.ID(2*pid+1))
			pid++
			rejected = append(rejected, p)
			for _, w := range ws {
				answers = append(answers, aggregate.Answer{Pair: p, Worker: w, Match: false})
			}
		}
	}
	aggregate.SortCanonical(answers)
	return answers, rejected, worker
}

// unanimousInversions counts unanimously judged pairs decided against
// their unanimous verdict, and the worst posterior given to a
// unanimously rejected pair.
func unanimousInversions(answers []aggregate.Answer, post aggregate.Posterior) (inversions int, unanimous int, worstRejected float64) {
	yes := make(map[record.Pair]int)
	total := make(map[record.Pair]int)
	for _, a := range answers {
		total[a.Pair]++
		if a.Match {
			yes[a.Pair]++
		}
	}
	for p, tot := range total {
		allYes, allNo := yes[p] == tot, yes[p] == 0
		if !allYes && !allNo {
			continue
		}
		unanimous++
		if allYes && post[p] < 0.5 {
			inversions++
		}
		if allNo {
			if post[p] >= 0.5 {
				inversions++
			}
			if post[p] > worstRejected {
				worstRejected = post[p]
			}
		}
	}
	return inversions, unanimous, worstRejected
}

// aggWorkload is one dataset the aggregation gate scores F1 on.
type aggWorkload struct {
	name string
	d    *dataset.Dataset
	tau  float64
}

// defaultAggregateWorkloads are the reference datasets the CI gate
// pins: Restaurant and the same Product(+Dup) workload the
// transitivity gate uses.
func defaultAggregateWorkloads() []aggWorkload {
	return []aggWorkload{
		{"restaurant", dataset.RestaurantN(3, 2000, 400), 0.4},
		// Duplicate-injected so the candidate graph has the clustered
		// structure real product feeds show.
		{"product+dup", dataset.ProductDup(2, dataset.Product(1)), 0.5},
	}
}

// runAggregate benchmarks the MAP aggregator and enforces its
// acceptance criteria: zero unanimous-verdict inversions on the sparse
// stress workload, equal-or-better F1 on every dataset, and k-batch ≡
// from-scratch under the new aggregator. eqData is the dataset for the
// k-batch equality check.
func runAggregate(workloads []aggWorkload, eqData *dataset.Dataset) (*AggregateReport, bool) {
	rep := &AggregateReport{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	ok := true

	// 1. The sparse-worker stress workload from the PR 4 degeneracy
	// repro, scaled up: 90 single-round workers.
	answers, _, workers := sparseWorkload(25, 5)
	ds, err := aggregate.New(aggregate.MethodDawidSkene)
	if err != nil {
		log.Fatal(err)
	}
	mp, err := aggregate.New(aggregate.MethodDawidSkeneMAP)
	if err != nil {
		log.Fatal(err)
	}
	dsPost := ds.Aggregate(answers)
	mpPost := mp.Aggregate(answers)
	invDS, unan, worstDS := unanimousInversions(answers, dsPost)
	invMP, _, worstMP := unanimousInversions(answers, mpPost)
	rep.Sparse = SparseAggregateRun{
		Pairs:          len(dsPost),
		UnanimousPairs: unan,
		Workers:        workers,

		InversionsDefault: invDS,
		InversionsMAP:     invMP,

		WorstRejectedPosteriorDefault: worstDS,
		WorstRejectedPosteriorMAP:     worstMP,
	}
	if invMP != 0 {
		fmt.Fprintf(os.Stderr, "FAIL: MAP aggregator inverted %d unanimous verdicts on the sparse workload\n", invMP)
		ok = false
	}
	if invDS == 0 {
		fmt.Fprintln(os.Stderr, "FAIL: the sparse workload no longer reproduces the pinned default-aggregator degeneracy — the gate is vacuous")
		ok = false
	}

	// 2. End-to-end F1 on the reference datasets, default vs MAP.
	for _, w := range workloads {
		var oracle []crowder.Pair
		for _, p := range w.d.Matches.Slice() {
			oracle = append(oracle, crowder.Pair{A: int(p.A), B: int(p.B)})
		}
		build := func() *crowder.Table {
			tab := crowder.NewTable(w.d.Table.Schema...)
			for i := range w.d.Table.Records {
				tab.Append(w.d.Table.Records[i].Values...)
			}
			return tab
		}
		opts := crowder.Options{
			Threshold: w.tau, HITType: crowder.PairHITs, ClusterSize: 10,
			Oracle: oracle, Seed: 1,
		}
		def, err := crowder.Resolve(build(), opts)
		if err != nil {
			log.Fatal(err)
		}
		opts.Aggregation = crowder.AggregationDawidSkeneMAP
		mapped, err := crowder.Resolve(build(), opts)
		if err != nil {
			log.Fatal(err)
		}
		calib := func(res *crowder.Result) []aggregate.CalibrationBucket {
			post := make(aggregate.Posterior, len(res.Matches))
			for _, m := range res.Matches {
				post[record.MakePair(record.ID(m.Pair.A), record.ID(m.Pair.B))] = m.Confidence
			}
			return aggregate.Calibration(post, func(p record.Pair) bool {
				return w.d.Matches.Has(p.A, p.B)
			}, 10)
		}
		run := AggregateRun{
			Dataset: w.name, Records: w.d.Table.Len(), Threshold: w.tau,
			Candidates: mapped.Candidates,
			F1Default:  transitiveF1(w.d.Matches, def),
			F1MAP:      transitiveF1(w.d.Matches, mapped),

			CalibrationDefault: calib(def),
			CalibrationMAP:     calib(mapped),
		}
		rep.Runs = append(rep.Runs, run)
		if run.F1MAP < run.F1Default {
			fmt.Fprintf(os.Stderr, "FAIL: %s: MAP F1 %.4f below default %.4f\n", w.name, run.F1MAP, run.F1Default)
			ok = false
		}
	}

	// 3. k-batch incremental ≡ from-scratch under the MAP aggregator.
	d := eqData
	var oracle []crowder.Pair
	for _, p := range d.Matches.Slice() {
		oracle = append(oracle, crowder.Pair{A: int(p.A), B: int(p.B)})
	}
	eqOpts := crowder.Options{
		Threshold: 0.4, HITType: crowder.PairHITs, ClusterSize: 10,
		Oracle: oracle, Seed: 1, Aggregation: crowder.AggregationDawidSkeneMAP,
	}
	union := crowder.NewTable(d.Table.Schema...)
	for i := range d.Table.Records {
		union.Append(d.Table.Records[i].Values...)
	}
	full, err := crowder.Resolve(union, eqOpts)
	if err != nil {
		log.Fatal(err)
	}
	rv, err := crowder.NewResolver(crowder.NewTable(d.Table.Schema...), eqOpts)
	if err != nil {
		log.Fatal(err)
	}
	var last *crowder.Result
	const batches = 4
	size := (d.Table.Len() + batches - 1) / batches
	for lo := 0; lo < d.Table.Len(); lo += size {
		hi := lo + size
		if hi > d.Table.Len() {
			hi = d.Table.Len()
		}
		for i := lo; i < hi; i++ {
			rv.Append(d.Table.Records[i].Values...)
		}
		if last, err = rv.ResolveDelta(); err != nil {
			log.Fatal(err)
		}
	}
	rep.DeltaEqualsScratch = len(full.Matches) == len(last.Matches)
	if rep.DeltaEqualsScratch {
		for i := range full.Matches {
			if full.Matches[i] != last.Matches[i] {
				rep.DeltaEqualsScratch = false
				break
			}
		}
	}
	if !rep.DeltaEqualsScratch {
		fmt.Fprintln(os.Stderr, "FAIL: k-batch ResolveDelta under the MAP aggregator differs from from-scratch Resolve")
		ok = false
	}
	return rep, ok
}

// writeLookupProfile writes a runtime profile by name ("mutex",
// "block") in pprof format.
func writeLookupProfile(path, name string) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	p := pprof.Lookup(name)
	if p == nil {
		log.Fatalf("no %q profile", name)
	}
	if err := p.WriteTo(f, 0); err != nil {
		log.Fatal(err)
	}
}

func writeJSON(out string, v any, summary string) {
	enc, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if out == "" {
		fmt.Print(string(enc))
		return
	}
	if err := os.WriteFile(out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println(summary)
}

func main() {
	os.Exit(run())
}

// run is main's body, returning the exit code so deferred profile writers
// execute before the process exits (os.Exit skips defers).
func run() int {
	out := flag.String("o", "", "write JSON to this file instead of stdout")
	n := flag.Int("n", 1000, "records in the benchmark table")
	delta := flag.Bool("delta", false, "benchmark the incremental resolver instead of the batch baseline")
	baseN := flag.Int("base", 10000, "delta/serve mode: records resolved before the timed batches")
	batchN := flag.Int("batch", 100, "delta/serve mode: records per batch")
	batches := flag.Int("batches", 5, "delta mode: number of timed delta batches")
	minSpeedup := flag.Float64("min-speedup", 1, "delta mode: fail unless delta resolve is at least this many times faster than from-scratch")
	serve := flag.Bool("serve", false, "benchmark the crowderd service path instead of the batch baseline")
	rounds := flag.Int("rounds", 5, "serve mode: timed append+resolve+poll rounds")
	reads := flag.Int("reads", 2000, "serve mode: GET /matches requests for the read-path throughput")
	transitive := flag.Bool("transitive", false, "benchmark the transitivity-aware adaptive scheduler instead of the batch baseline")
	hybrid := flag.Bool("hybrid", false, "gate the hybrid human–machine router: session-lifetime HIT savings at equal-or-better F1, plus rerun and shard bit-identity")
	aggregateMode := flag.Bool("aggregate", false, "gate the DawidSkeneMAP aggregator against the sparse-coverage degeneracy instead of the batch baseline")
	scale := flag.Bool("scale", false, "benchmark the streaming join path against the materialized one and run the large synthetic workload")
	scaleN := flag.Int("scale-n", 1_000_000, "scale mode: records in the synthetic scale workload")
	scaleTopK := flag.Int("scale-topk", 1000, "scale mode: bounded ranking-heap size the stream feeds")
	scaleMaxRSS := flag.Float64("scale-max-rss-mb", 8192, "scale mode: fail if peak RSS exceeds this many MB")
	shard := flag.Bool("shard", false, "benchmark the sharded resolution path: scaling sweep plus cross-shard-count equality gates")
	tenant := flag.Bool("tenant", false, "benchmark the multi-tenant claim plane: interference, pool scaling and per-tenant identity gates")
	tenants := flag.Int("tenants", 3, "tenant mode: light tenant tables sharing the pool")
	tenantWorkers := flag.Int("tenant-workers", 4, "tenant mode: shared-pool workers")
	recoverMode := flag.Bool("recover", false, "gate durable session storage: WAL+snapshot reload and a crowderd SIGKILL drill must be indistinguishable from never crashing")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	mutexprofile := flag.String("mutexprofile", "", "record all mutex contention and write the profile to this file at exit")
	blockprofile := flag.String("blockprofile", "", "record all blocking events and write the profile to this file at exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}
	if *mutexprofile != "" {
		// Fraction 1 records every contention event: bench runs are short
		// and the whole point is to see the resolver's lock behavior.
		runtime.SetMutexProfileFraction(1)
		defer writeLookupProfile(*mutexprofile, "mutex")
	}
	if *blockprofile != "" {
		runtime.SetBlockProfileRate(1)
		defer writeLookupProfile(*blockprofile, "block")
	}

	if *recoverMode {
		rep, ok := runRecover()
		identical := 0
		for _, r := range rep.Runs {
			if r.MatchesIdentical && r.ReissuedHITs == 0 {
				identical++
			}
		}
		writeJSON(*out, rep, fmt.Sprintf(
			"wrote %s (reload≡never-crashed: %d/%d library runs, recovery %.1fms / %.1fms; crash drill: %d/%d HITs answered pre-kill, %d reclaimed, %d judged pairs re-served, restart %.0fms, wal %dB snap %dB, identical: %v)",
			*out, identical, len(rep.Runs), rep.Runs[0].RecoveryMs, rep.Runs[1].RecoveryMs,
			rep.Crash.AnsweredBeforeKill, rep.Crash.OpenHITsBeforeKill, rep.Crash.ReclaimedAfterKill,
			rep.Crash.ReissuedJudged, rep.Crash.RestartMs, rep.Crash.WALBytes, rep.Crash.SnapshotBytes,
			rep.Crash.MatchesIdentical))
		if !ok {
			return 1
		}
		return 0
	}

	if *tenant {
		rep, ok := runTenant(*tenants, *tenantWorkers)
		writeJSON(*out, rep, fmt.Sprintf(
			"wrote %s (light p99 %.1fms baseline → %.1fms with heavy neighbor, ratio %.2f; throughput %.0f → %.0f claims/s over %d→%d workers; bit-identical: %v)",
			*out, rep.BaselineLightP99Ms, rep.ContendedLightP99Ms, rep.InterferenceRatio,
			rep.Throughput[0].ClaimsPerSec, rep.Throughput[len(rep.Throughput)-1].ClaimsPerSec,
			rep.Throughput[0].Workers, rep.Throughput[len(rep.Throughput)-1].Workers, rep.BitIdentical))
		if !ok {
			return 1
		}
		return 0
	}

	if *shard {
		rep, ok := runShard(*scaleN, *scaleTopK)
		gate := "skipped (single-core host)"
		if !rep.SpeedupGateSkipped {
			gate = fmt.Sprintf("required %.2fx", rep.RequiredSpeedup)
		}
		writeJSON(*out, rep, fmt.Sprintf(
			"wrote %s (sharded sweep best speedup %.2fx on %d CPUs, gate %s; %d equality runs)",
			*out, rep.MaxSpeedup, rep.NumCPU, gate, len(rep.EqualityRuns)))
		if !ok {
			return 1
		}
		return 0
	}

	if *scale {
		rep, ok := runScale(*baseN, *scaleN, *scaleTopK, *scaleMaxRSS)
		writeJSON(*out, rep, fmt.Sprintf(
			"wrote %s (streamed bytes/op -%.1f%% vs materialized, ns ratio %.2f; %d records streamed in %.1fs, recall %.3f, peak RSS %.0f MB)",
			*out, rep.BytesReduction*100, rep.NsRatio, rep.ScaleRecords, rep.ScaleWallSeconds, rep.ScaleMatchRecall, rep.PeakRSSMB))
		if !ok {
			return 1
		}
		return 0
	}

	if *aggregateMode {
		rep, ok := runAggregate(defaultAggregateWorkloads(), dataset.RestaurantN(5, 600, 120))
		var parts []string
		for _, r := range rep.Runs {
			parts = append(parts, fmt.Sprintf("%s F1 %.3f→%.3f", r.Dataset, r.F1Default, r.F1MAP))
		}
		writeJSON(*out, rep, fmt.Sprintf(
			"wrote %s (sparse inversions default→MAP: %d→%d over %d unanimous pairs; %s; delta≡scratch: %v)",
			*out, rep.Sparse.InversionsDefault, rep.Sparse.InversionsMAP, rep.Sparse.UnanimousPairs,
			strings.Join(parts, "; "), rep.DeltaEqualsScratch))
		if !ok {
			return 1
		}
		return 0
	}

	if *transitive {
		rep, ok := runTransitive()
		var parts []string
		for _, r := range rep.Runs {
			parts = append(parts, fmt.Sprintf("%s %d→%d HITs (F1 %.3f→%.3f)", r.Dataset, r.HITsOff, r.HITsOn, r.F1Off, r.F1On))
		}
		writeJSON(*out, rep, fmt.Sprintf("wrote %s (%s; delta≡scratch: %v)",
			*out, strings.Join(parts, "; "), rep.DeltaEqualsScratch))
		if !ok {
			return 1
		}
		return 0
	}

	if *hybrid {
		rep, ok := runHybrid()
		var parts []string
		for _, r := range rep.Runs {
			parts = append(parts, fmt.Sprintf("%s %d→%d HITs −%.0f%% (machine %d, F1 %.3f→%.3f)",
				r.Dataset, r.HITsOff, r.HITsOn, 100*r.HITReduction, r.MachinePairs, r.F1Off, r.F1On))
		}
		writeJSON(*out, rep, fmt.Sprintf("wrote %s (%s; rerun identical: %v; shards identical: %v)",
			*out, strings.Join(parts, "; "), rep.RerunIdentical, rep.ShardsIdentical))
		if !ok {
			return 1
		}
		return 0
	}

	if *serve {
		rep, ok := runServe(*baseN, *batchN, *rounds, *reads)
		writeJSON(*out, rep, fmt.Sprintf(
			"wrote %s (append+resolve p50 %.1fms p99 %.1fms; matches read %.0f req/s p50 %.2fms; matches identical: %v)",
			*out, rep.ResolveRoundP50Ms, rep.ResolveRoundP99Ms, rep.MatchReadRPS, rep.MatchReadP50Ms, rep.MatchesIdentical))
		if !ok {
			return 1
		}
		return 0
	}

	if *delta {
		rep, ok := runDelta(*baseN, *batchN, *batches, *minSpeedup)
		writeJSON(*out, rep, fmt.Sprintf(
			"wrote %s (delta resolve %.2fx faster than from-scratch; matches identical: %v; reissued HITs: %d)",
			*out, rep.Speedup, rep.MatchesIdentical, rep.ReissuedHITs))
		if !ok {
			return 1
		}
		return 0
	}

	d := dataset.RestaurantN(1, *n, *n/8)
	tab := d.Table
	tab.TokenIDs() // warm the token cache; the legacy path re-tokenizes regardless

	base := Baseline{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Records:    *n,
	}

	const tau = 0.3
	seed := measure("simjoin/legacy-seed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			simjoin.LegacyJoin(tab, simjoin.Options{Threshold: tau})
		}
	})
	seq := measure("simjoin/interned-seq", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			simjoin.Join(tab, simjoin.Options{Threshold: tau, Parallelism: 1})
		}
	})
	par := measure("simjoin/interned-parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			simjoin.Join(tab, simjoin.Options{Threshold: tau})
		}
	})
	seq.SpeedupVsSeed = float64(seed.NsPerOp) / float64(seq.NsPerOp)
	par.SpeedupVsSeed = float64(seed.NsPerOp) / float64(par.NsPerOp)
	base.Benchmarks = append(base.Benchmarks, seed, seq, par)

	// End-to-end Resolve on a crowdable slice of the dataset.
	small := dataset.RestaurantN(2, 300, 40)
	var oracle []crowder.Pair
	for _, p := range small.Matches.Slice() {
		oracle = append(oracle, crowder.Pair{A: int(p.A), B: int(p.B)})
	}
	ctab := crowder.NewTable(small.Table.Schema...)
	for i := range small.Table.Records {
		ctab.Append(small.Table.Records[i].Values...)
	}
	resolveOpts := crowder.Options{Threshold: 0.4, ClusterSize: 10, Oracle: oracle, Seed: 1}
	base.Benchmarks = append(base.Benchmarks,
		measure("resolve/end-to-end", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := crowder.Resolve(ctab, resolveOpts); err != nil {
					b.Fatal(err)
				}
			}
		}),
	)

	writeJSON(*out, base, fmt.Sprintf("wrote %s (simjoin speedup vs seed: seq %.2fx, parallel %.2fx at GOMAXPROCS=%d)",
		*out, seq.SpeedupVsSeed, par.SpeedupVsSeed, base.GoMaxProcs))
	return 0
}
