// Command bench records the repository's performance baseline: ns/op for
// the similarity join (the seed repo's legacy map-of-strings path, the
// interned sequential path, and the sharded parallel path) and for the
// end-to-end Resolve workflow. It writes the results as JSON so the
// speedups of this and future PRs are pinned in the repository.
//
//	go run ./cmd/bench                 # prints JSON to stdout
//	go run ./cmd/bench -o BENCH_baseline.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"testing"

	crowder "github.com/crowder/crowder"
	"github.com/crowder/crowder/internal/dataset"
	"github.com/crowder/crowder/internal/simjoin"
)

// Benchmark is one recorded measurement.
type Benchmark struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	// SpeedupVsSeed is NsPerOp of the seed baseline divided by this
	// benchmark's NsPerOp, where a seed baseline exists (simjoin rows).
	SpeedupVsSeed float64 `json:"speedup_vs_seed,omitempty"`
}

// Baseline is the file layout of BENCH_baseline.json.
type Baseline struct {
	GoVersion  string      `json:"go_version"`
	NumCPU     int         `json:"num_cpu"`
	GoMaxProcs int         `json:"go_max_procs"`
	Records    int         `json:"records"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func measure(name string, f func(b *testing.B)) Benchmark {
	r := testing.Benchmark(f)
	return Benchmark{
		Name:        name,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

func main() {
	out := flag.String("o", "", "write JSON to this file instead of stdout")
	n := flag.Int("n", 1000, "records in the benchmark table")
	flag.Parse()

	d := dataset.RestaurantN(1, *n, *n/8)
	tab := d.Table
	tab.TokenIDs() // warm the token cache; the legacy path re-tokenizes regardless

	base := Baseline{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Records:    *n,
	}

	const tau = 0.3
	seed := measure("simjoin/legacy-seed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			simjoin.LegacyJoin(tab, simjoin.Options{Threshold: tau})
		}
	})
	seq := measure("simjoin/interned-seq", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			simjoin.Join(tab, simjoin.Options{Threshold: tau, Parallelism: 1})
		}
	})
	par := measure("simjoin/interned-parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			simjoin.Join(tab, simjoin.Options{Threshold: tau})
		}
	})
	seq.SpeedupVsSeed = float64(seed.NsPerOp) / float64(seq.NsPerOp)
	par.SpeedupVsSeed = float64(seed.NsPerOp) / float64(par.NsPerOp)
	base.Benchmarks = append(base.Benchmarks, seed, seq, par)

	// End-to-end Resolve on a crowdable slice of the dataset.
	small := dataset.RestaurantN(2, 300, 40)
	var oracle []crowder.Pair
	for _, p := range small.Matches.Slice() {
		oracle = append(oracle, crowder.Pair{A: int(p.A), B: int(p.B)})
	}
	ctab := crowder.NewTable(small.Table.Schema...)
	for i := range small.Table.Records {
		ctab.Append(small.Table.Records[i].Values...)
	}
	resolveOpts := crowder.Options{Threshold: 0.4, ClusterSize: 10, Oracle: oracle, Seed: 1}
	base.Benchmarks = append(base.Benchmarks,
		measure("resolve/end-to-end", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := crowder.Resolve(ctab, resolveOpts); err != nil {
					b.Fatal(err)
				}
			}
		}),
	)

	enc, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		fmt.Print(string(enc))
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (simjoin speedup vs seed: seq %.2fx, parallel %.2fx at GOMAXPROCS=%d)\n",
		*out, seq.SpeedupVsSeed, par.SpeedupVsSeed, base.GoMaxProcs)
}
