package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	crowder "github.com/crowder/crowder"
	"github.com/crowder/crowder/internal/dataset"
	"github.com/crowder/crowder/internal/engine"
	"github.com/crowder/crowder/internal/simjoin"
)

// ShardScalePoint is one parallelism level of the sharded-join sweep:
// the table indexed and joined from scratch with P shards on P procs.
type ShardScalePoint struct {
	Parallelism int `json:"parallelism"`
	Shards      int `json:"shards"`

	WallNs        int64   `json:"wall_ns"`
	RecordsPerSec float64 `json:"records_per_sec"`
	// Speedup is the 1-shard/1-proc point's wall time over this one's.
	Speedup float64 `json:"speedup_vs_p1"`
	// Identical: this point's ranked top-K is bit-identical to the
	// single-index reference join.
	Identical bool `json:"identical_to_single_index"`
}

// ShardEqualityRun is one shard count's end-to-end resolution compared
// against the unsharded (Shards=0) reference session.
type ShardEqualityRun struct {
	Shards       int `json:"shards"`
	Matches      int `json:"matches"`
	HITs         int `json:"hits"`
	DeducedPairs int `json:"deduced_pairs"`
	JudgedPairs  int `json:"judged_pairs"`

	// IdenticalToUnsharded: matches (pairs, order, confidences), HIT
	// count, deduced-pair count and judged-pair count all equal the
	// Shards=0 run's.
	IdenticalToUnsharded bool `json:"identical_to_unsharded"`
	// DeltaEqualsScratch: a k-batch incremental session at this shard
	// count reproduces its own from-scratch resolution bit for bit.
	DeltaEqualsScratch bool `json:"delta_equals_scratch"`
}

// ShardReport is the file layout of BENCH_shard.json.
type ShardReport struct {
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"go_max_procs"`

	// Scaling sweep: dataset.ScaleN joined from scratch at each
	// parallelism level, P shards on GOMAXPROCS=P.
	ScaleRecords   int     `json:"scale_records"`
	ScaleThreshold float64 `json:"scale_threshold"`
	TopK           int     `json:"top_k"`
	// SingleIndexNs is the unsharded streaming reference (NewIndex +
	// UpdateSeq into a bounded heap), the baseline the sweep's outputs
	// must reproduce.
	SingleIndexNs int64             `json:"single_index_ns"`
	Points        []ShardScalePoint `json:"points"`

	// MaxSpeedup is the best Speedup across the sweep; RequiredSpeedup
	// is the gate it must clear: min(4, NumCPU/2) at min(8, NumCPU)
	// procs. On a single-core host the scaling gate is vacuous and
	// recorded as skipped — the equality gates still bind.
	MaxSpeedup         float64 `json:"max_speedup"`
	RequiredSpeedup    float64 `json:"required_speedup"`
	SpeedupGateSkipped bool    `json:"speedup_gate_skipped"`

	// Equality sweep: full crowd resolutions (transitivity on) of the
	// same table at Shards 0/1/2/4/8, each compared to the unsharded
	// run and to its own k-batch incremental session.
	EqualityRecords int                `json:"equality_records"`
	EqualityRuns    []ShardEqualityRun `json:"equality_runs"`
}

// runShard benchmarks the sharded resolution path. Gates (any failure
// exits 1):
//
//   - every sweep point's ranked top-K is bit-identical to the
//     single-index join — sharding must never change the answer;
//   - every equality run's resolution is identical to the unsharded
//     session's, and its k-batch incremental session reproduces its
//     from-scratch run;
//   - on multi-core hosts, the sweep reaches min(4, NumCPU/2)× speedup.
func runShard(scaleRecords, topK int) (*ShardReport, bool) {
	rep := &ShardReport{
		GoVersion:      runtime.Version(),
		NumCPU:         runtime.NumCPU(),
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		ScaleRecords:   scaleRecords,
		ScaleThreshold: 0.6,
		TopK:           topK,
	}
	ok := true

	// ---- Scaling sweep on the synthetic scale workload. ----
	sd := dataset.ScaleN(1, scaleRecords, scaleRecords/20)
	stab := sd.Table
	stab.TokenIDs()
	sopts := simjoin.Options{Threshold: rep.ScaleThreshold}

	// Unsharded reference: the streaming path the scale benchmark pins.
	start := time.Now()
	rank := engine.NewTopK(topK, simjoin.CompareScored)
	for sp := range simjoin.NewIndex(stab, sopts).UpdateSeq() {
		rank.Push(sp)
	}
	want := rank.Ranked()
	rep.SingleIndexNs = time.Since(start).Nanoseconds()
	if len(want) == 0 {
		fmt.Fprintln(os.Stderr, "FAIL: reference join produced no candidates")
		ok = false
	}

	prevProcs := runtime.GOMAXPROCS(0)
	var p1 int64
	for _, p := range []int{1, 2, 4, 8} {
		runtime.GOMAXPROCS(p)
		sx := simjoin.NewSharded(stab, p, simjoin.Options{
			Threshold: rep.ScaleThreshold, Parallelism: p,
		})
		t0 := time.Now()
		got := sx.UpdateRanked(topK)
		wall := time.Since(t0).Nanoseconds()
		if p == 1 {
			p1 = wall
		}
		pt := ShardScalePoint{
			Parallelism:   p,
			Shards:        p,
			WallNs:        wall,
			RecordsPerSec: float64(scaleRecords) / (float64(wall) / 1e9),
			Speedup:       float64(p1) / float64(wall),
			Identical:     scoredEqual(got, want),
		}
		rep.Points = append(rep.Points, pt)
		if !pt.Identical {
			fmt.Fprintf(os.Stderr, "FAIL: %d-shard ranked join differs from the single-index join\n", p)
			ok = false
		}
		if pt.Speedup > rep.MaxSpeedup {
			rep.MaxSpeedup = pt.Speedup
		}
	}
	runtime.GOMAXPROCS(prevProcs)

	if rep.NumCPU >= 2 {
		rep.RequiredSpeedup = float64(rep.NumCPU) / 2
		if rep.RequiredSpeedup > 4 {
			rep.RequiredSpeedup = 4
		}
		if rep.MaxSpeedup < rep.RequiredSpeedup {
			fmt.Fprintf(os.Stderr, "FAIL: best sharded speedup %.2fx below required %.2fx on %d CPUs\n",
				rep.MaxSpeedup, rep.RequiredSpeedup, rep.NumCPU)
			ok = false
		}
	} else {
		// One core: no parallel speedup is observable, only overhead.
		// The sweep still ran and the equality gates still bind.
		rep.SpeedupGateSkipped = true
	}

	// ---- Equality sweep: end-to-end resolutions across shard counts. ----
	// Product+Dup is the clique-rich workload (duplicate cliques of up to
	// 10 records), so the compared state includes a substantial deduced
	// fraction — the cross-shard transitivity merge is exercised for real,
	// not vacuously.
	d := dataset.ProductDup(2, dataset.Product(1))
	rep.EqualityRecords = d.Table.Len()
	var oracle []crowder.Pair
	for _, p := range d.Matches.Slice() {
		oracle = append(oracle, crowder.Pair{A: int(p.A), B: int(p.B)})
	}
	mkOpts := func(shards int) crowder.Options {
		return crowder.Options{
			Threshold: 0.5, HITType: crowder.PairHITs, ClusterSize: 10,
			Oracle: oracle, Seed: 1, SpammerRate: crowder.NoSpammers,
			Transitivity: crowder.TransitivityOn,
			Shards:       shards,
		}
	}
	build := func() *crowder.Table {
		tab := crowder.NewTable(d.Table.Schema...)
		for i := range d.Table.Records {
			tab.Append(d.Table.Records[i].Values...)
		}
		return tab
	}
	sameMatches := func(a, b *crowder.Result) bool {
		if len(a.Matches) != len(b.Matches) {
			return false
		}
		for i := range a.Matches {
			if a.Matches[i] != b.Matches[i] {
				return false
			}
		}
		return true
	}

	var baseline *crowder.Result
	baselineJudged := 0
	for _, shards := range []int{0, 1, 2, 4, 8} {
		opts := mkOpts(shards)
		res, err := crowder.Resolve(build(), opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "FAIL: %d-shard resolve: %v\n", shards, err)
			ok = false
			continue
		}
		// k-batch incremental session at the same shard count.
		rv, err := crowder.NewResolver(crowder.NewTable(d.Table.Schema...), opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "FAIL: %d-shard resolver: %v\n", shards, err)
			ok = false
			continue
		}
		var last *crowder.Result
		const batches = 3
		size := (d.Table.Len() + batches - 1) / batches
		for lo := 0; lo < d.Table.Len(); lo += size {
			hi := lo + size
			if hi > d.Table.Len() {
				hi = d.Table.Len()
			}
			for i := lo; i < hi; i++ {
				rv.Append(d.Table.Records[i].Values...)
			}
			if last, err = rv.ResolveDelta(); err != nil {
				fmt.Fprintf(os.Stderr, "FAIL: %d-shard delta: %v\n", shards, err)
				ok = false
				break
			}
		}
		run := ShardEqualityRun{
			Shards:       shards,
			Matches:      len(res.Matches),
			HITs:         res.HITs,
			DeducedPairs: res.DeducedPairs,
			JudgedPairs:  rv.JudgedPairs(),
		}
		if shards == 0 {
			baseline = res
			baselineJudged = run.JudgedPairs
			if res.DeducedPairs == 0 {
				fmt.Fprintln(os.Stderr, "FAIL: equality workload deduced nothing; the proof comparison is vacuous")
				ok = false
			}
		}
		run.IdenticalToUnsharded = baseline != nil &&
			sameMatches(res, baseline) &&
			res.HITs == baseline.HITs &&
			res.DeducedPairs == baseline.DeducedPairs &&
			run.JudgedPairs == baselineJudged
		run.DeltaEqualsScratch = last != nil && sameMatches(res, last)
		rep.EqualityRuns = append(rep.EqualityRuns, run)
		if !run.IdenticalToUnsharded {
			fmt.Fprintf(os.Stderr, "FAIL: %d-shard resolution differs from the unsharded session\n", shards)
			ok = false
		}
		if !run.DeltaEqualsScratch {
			fmt.Fprintf(os.Stderr, "FAIL: %d-shard k-batch session differs from its from-scratch resolve\n", shards)
			ok = false
		}
	}
	return rep, ok
}
