package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"

	"github.com/crowder/crowder"
	"github.com/crowder/crowder/internal/dataset"
	"github.com/crowder/crowder/internal/record"
)

// HybridRun is one workload's crowd-only vs hybrid comparison in
// BENCH_hybrid.json. Both sessions run the same batched schedule with
// transitivity on; the hybrid one additionally routes through the
// learning router and ends with its trailing audit deltas, whose HITs
// count toward its total — the audit is part of the hybrid protocol,
// not free work.
type HybridRun struct {
	Dataset   string  `json:"dataset"`
	Records   int     `json:"records"`
	Threshold float64 `json:"threshold"`
	Batches   int     `json:"batches"`

	HITsOff int     `json:"hits_off"`
	HITsOn  int     `json:"hits_on"`
	CostOff float64 `json:"cost_off_dollars"`
	CostOn  float64 `json:"cost_on_dollars"`
	F1Off   float64 `json:"f1_off"`
	F1On    float64 `json:"f1_on"`

	// MachinePairs is how many candidate pairs the router resolved
	// without the crowd, summed over the session's deltas.
	MachinePairs int `json:"machine_pairs"`
	// AuditHITs is the slice of HITsOn spent by the trailing audit
	// deltas re-arbitrating machine verdicts the final model disputed.
	AuditHITs int `json:"audit_hits"`
	// HITReduction is 1 − HITsOn/HITsOff: the session-lifetime crowd
	// saving the hybrid router bought.
	HITReduction float64 `json:"hit_reduction"`
}

// HybridReport is the file layout of BENCH_hybrid.json.
type HybridReport struct {
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"go_max_procs"`

	Runs []HybridRun `json:"runs"`
	// RerunIdentical reports whether a second identical hybrid session
	// reproduced the first bit-for-bit (HITs, machine pairs, matches).
	RerunIdentical bool `json:"rerun_identical"`
	// ShardsIdentical reports whether the hybrid session under 4 shards
	// reproduced the unsharded session bit-for-bit.
	ShardsIdentical bool `json:"shards_identical"`
}

// minHITReduction is the acceptance floor: the hybrid session must cut
// the session-lifetime HIT count by at least this fraction on every
// workload, at equal-or-better F1.
const minHITReduction = 0.40

// shuffledDataset permutes a dataset's records under a deterministic
// seed, remapping the ground-truth pairs. The generators append
// injected duplicates after the base records, so an in-order batched
// session would see no matching pairs until the final batches — the
// shuffle spreads both classes over the session's lifetime, which is
// the regime an incremental resolver actually runs in.
func shuffledDataset(seed int64, d *dataset.Dataset) ([][]string, []string, []crowder.Pair, record.PairSet) {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(d.Table.Len())
	rows := make([][]string, len(perm))
	where := make([]int, len(perm))
	for newPos, old := range perm {
		row := make([]string, len(d.Table.Records[old].Values))
		copy(row, d.Table.Records[old].Values)
		rows[newPos] = row
		where[old] = newPos
	}
	var oracle []crowder.Pair
	truth := record.NewPairSet()
	for _, p := range d.Matches.Slice() {
		oracle = append(oracle, crowder.Pair{A: where[p.A], B: where[p.B]})
		truth.Add(record.ID(where[p.A]), record.ID(where[p.B]))
	}
	return rows, d.Table.Schema, oracle, truth
}

// hybridSessionRun drives one k-batch session and, when the router is
// on, drains the trailing audit deltas (bounded). It returns the final
// result plus the session-summed HIT, machine-pair, cost and audit-HIT
// counters.
func hybridSessionRun(rows [][]string, schema []string, opts crowder.Options, batches int) (last *crowder.Result, hits, machine, auditHITs int, cost float64) {
	rv, err := crowder.NewResolver(crowder.NewTable(schema...), opts)
	if err != nil {
		log.Fatal(err)
	}
	size := (len(rows) + batches - 1) / batches
	for lo := 0; lo < len(rows); lo += size {
		hi := lo + size
		if hi > len(rows) {
			hi = len(rows)
		}
		rv.AppendBatch(rows[lo:hi]...)
		res, err := rv.ResolveDelta()
		if err != nil {
			log.Fatal(err)
		}
		hits += res.HITs
		machine += res.MachinePairs
		cost += res.CostDollars
		last = res
	}
	if opts.Hybrid == crowder.HybridOn {
		for i := 0; i < 3; i++ {
			res, err := rv.ResolveDelta()
			if err != nil {
				log.Fatal(err)
			}
			if res.HITs == 0 {
				break
			}
			hits += res.HITs
			auditHITs += res.HITs
			cost += res.CostDollars
			last = res
		}
	}
	return last, hits, machine, auditHITs, cost
}

// runHybrid benchmarks the hybrid human–machine router and enforces its
// acceptance criteria: on every workload the hybrid session must post
// at most (1−minHITReduction)× the crowd-only session's HITs at
// equal-or-better F1, and the session must be bit-identical across
// reruns and shard counts.
func runHybrid() (*HybridReport, bool) {
	rep := &HybridReport{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}

	type workload struct {
		name    string
		rows    [][]string
		schema  []string
		oracle  []crowder.Pair
		truth   record.PairSet
		tau     float64
		batches int
	}
	var workloads []workload
	{
		rows, schema, oracle, truth := shuffledDataset(3, dataset.RestaurantN(3, 2000, 400))
		workloads = append(workloads, workload{"restaurant", rows, schema, oracle, truth, 0.4, 6})
	}
	{
		// The heavy-transitivity product workload (the paper's Figure
		// 15(b) dataset): above-threshold candidates are almost all true
		// matches, so the router's synthetic-negative path carries it.
		d := dataset.ProductDup(2, dataset.Product(1))
		rows := make([][]string, d.Table.Len())
		for i := range d.Table.Records {
			row := make([]string, len(d.Table.Records[i].Values))
			copy(row, d.Table.Records[i].Values)
			rows[i] = row
		}
		var oracle []crowder.Pair
		for _, p := range d.Matches.Slice() {
			oracle = append(oracle, crowder.Pair{A: int(p.A), B: int(p.B)})
		}
		workloads = append(workloads, workload{"product+dup", rows, d.Table.Schema, oracle, d.Matches, 0.5, 6})
	}

	ok := true
	rep.RerunIdentical, rep.ShardsIdentical = true, true
	for _, w := range workloads {
		base := crowder.Options{
			Threshold: w.tau, HITType: crowder.PairHITs, ClusterSize: 10,
			Oracle: w.oracle, Seed: 1, SpammerRate: crowder.NoSpammers,
			Transitivity: crowder.TransitivityOn,
		}
		offLast, offHITs, _, _, offCost := hybridSessionRun(w.rows, w.schema, base, w.batches)

		on := base
		on.Hybrid = crowder.HybridOn
		onLast, onHITs, machine, auditHITs, onCost := hybridSessionRun(w.rows, w.schema, on, w.batches)

		run := HybridRun{
			Dataset: w.name, Records: len(w.rows), Threshold: w.tau, Batches: w.batches,
			HITsOff: offHITs, HITsOn: onHITs,
			CostOff: offCost, CostOn: onCost,
			F1Off: transitiveF1(w.truth, offLast), F1On: transitiveF1(w.truth, onLast),
			MachinePairs: machine, AuditHITs: auditHITs,
		}
		if offHITs > 0 {
			run.HITReduction = 1 - float64(onHITs)/float64(offHITs)
		}
		rep.Runs = append(rep.Runs, run)

		if run.HITReduction < minHITReduction {
			fmt.Fprintf(os.Stderr, "FAIL: %s: hybrid cut HITs by %.0f%% (%d→%d); the floor is %.0f%%\n",
				w.name, 100*run.HITReduction, offHITs, onHITs, 100*minHITReduction)
			ok = false
		}
		if run.F1On < run.F1Off {
			fmt.Fprintf(os.Stderr, "FAIL: %s: hybrid F1 %.4f below crowd-only %.4f\n", w.name, run.F1On, run.F1Off)
			ok = false
		}
		if machine == 0 {
			fmt.Fprintf(os.Stderr, "FAIL: %s: the router resolved nothing by machine\n", w.name)
			ok = false
		}

		// Rerun identity: the hybrid session is a pure function of
		// (rows, Options) — train, route, review and all.
		reLast, reHITs, reMachine, _, _ := hybridSessionRun(w.rows, w.schema, on, w.batches)
		if reHITs != onHITs || reMachine != machine || !sameMatches(onLast.Matches, reLast.Matches) {
			fmt.Fprintf(os.Stderr, "FAIL: %s: hybrid rerun diverged (HITs %d vs %d, machine %d vs %d)\n",
				w.name, reHITs, onHITs, reMachine, machine)
			rep.RerunIdentical = false
			ok = false
		}

		// Shard identity: routing happens above the sharded join, so the
		// shard count must not leak into a single verdict.
		sharded := on
		sharded.Shards = 4
		shLast, shHITs, shMachine, _, _ := hybridSessionRun(w.rows, w.schema, sharded, w.batches)
		if shHITs != onHITs || shMachine != machine || !sameMatches(onLast.Matches, shLast.Matches) {
			fmt.Fprintf(os.Stderr, "FAIL: %s: 4-shard hybrid session diverged (HITs %d vs %d, machine %d vs %d)\n",
				w.name, shHITs, onHITs, shMachine, machine)
			rep.ShardsIdentical = false
			ok = false
		}
	}
	return rep, ok
}
