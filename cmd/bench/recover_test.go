package main

import (
	"os"
	"path/filepath"
	"testing"

	crowder "github.com/crowder/crowder"
)

func TestSameMatches(t *testing.T) {
	a := []crowder.Match{{Pair: crowder.Pair{A: 0, B: 1}, Confidence: 0.9}}
	b := []crowder.Match{{Pair: crowder.Pair{A: 0, B: 1}, Confidence: 0.9}}
	if !sameMatches(a, b) {
		t.Error("identical lists reported different")
	}
	b[0].Confidence = 0.90001
	if sameMatches(a, b) {
		t.Error("confidence drift not detected")
	}
	if sameMatches(a, nil) {
		t.Error("length mismatch not detected")
	}
	if !sameMatches(nil, nil) {
		t.Error("two empty lists reported different")
	}
}

func TestStoreBytes(t *testing.T) {
	dir := t.TempDir()
	files := map[string]int{
		"wal-00000000.log":       10,
		"wal-00000001.log":       7,
		"snapshot-00000001.snap": 20,
		"notes.txt":              99,
	}
	for name, n := range files {
		if err := os.WriteFile(filepath.Join(dir, name), make([]byte, n), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	wal, snap := storeBytes(dir)
	if wal != 17 || snap != 20 {
		t.Errorf("storeBytes = (%d, %d); want (17, 20)", wal, snap)
	}
}

// TestRunRecoverLibrary runs the library reload drill exactly as the CI
// gate does: the reloaded session must continue bit-identically with
// zero re-issued HITs, for the single-index and the sharded session.
func TestRunRecoverLibrary(t *testing.T) {
	for _, shards := range []int{0, 4} {
		var failures []string
		run := runRecoverLibrary(shards, &failures)
		if len(failures) != 0 {
			t.Fatalf("shards=%d: %v", shards, failures)
		}
		if !run.MatchesIdentical || run.ReissuedHITs != 0 {
			t.Fatalf("shards=%d: identical=%v reissued=%d", shards, run.MatchesIdentical, run.ReissuedHITs)
		}
		if run.EventsReplayed == 0 || run.WALBytes+run.SnapshotBytes == 0 {
			t.Fatalf("shards=%d: nothing was persisted: %+v", shards, run)
		}
	}
}

// TestRunRecoverCrash runs the real SIGKILL drill: build crowderd, kill
// it mid-resolve, restart on the same data dir, and require zero
// re-served paid pairs plus matches identical to a never-crashed run.
// It needs the module root as working directory to build ./cmd/crowderd.
func TestRunRecoverCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess drill skipped in -short mode")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(filepath.Join(wd, "..", "..")); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()

	var failures []string
	run := runRecoverCrash(&failures)
	if len(failures) != 0 {
		t.Fatalf("crash drill failed: %v", failures)
	}
	if !run.MatchesIdentical {
		t.Fatal("matches after SIGKILL+restart differ from never-crashed control")
	}
	if run.ReissuedJudged != 0 {
		t.Fatalf("%d paid pairs re-served after restart", run.ReissuedJudged)
	}
	if run.ReclaimedAfterKill == 0 || run.AnsweredBeforeKill == 0 {
		t.Fatalf("drill was not mid-flight: %+v", run)
	}
}
