package main

import (
	"bufio"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/crowder/crowder/internal/dataset"
	"github.com/crowder/crowder/internal/engine"
	"github.com/crowder/crowder/internal/record"
	"github.com/crowder/crowder/internal/simjoin"
)

// ScaleReport is the file layout of BENCH_scale.json: the streaming join
// path measured against the materialized one on the 10k baseline
// workload, plus the 1M-record synthetic workload that only the
// streaming path can run comfortably.
type ScaleReport struct {
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"go_max_procs"`

	// Baseline workload: RestaurantN at BaselineRecords, threshold 0.3 —
	// the same table shape BENCH_baseline measures.
	BaselineRecords int     `json:"baseline_records"`
	Threshold       float64 `json:"threshold"`
	TopK            int     `json:"top_k"`

	// Materialized is NewIndex+Update: every candidate held in one slice,
	// canonically sorted. Streamed is NewIndex+UpdateSeq feeding a bounded
	// top-K heap: O(K) live candidates. Same table, same candidates.
	Materialized Benchmark `json:"materialized"`
	Streamed     Benchmark `json:"streamed"`
	// BytesReduction is 1 − streamed/materialized bytes_per_op. Gated ≥ 0.5.
	BytesReduction float64 `json:"bytes_reduction"`
	// NsRatio is streamed/materialized ns_per_op. Gated ≤ 1.25: ranking
	// through the heap must not cost wall-clock.
	NsRatio float64 `json:"ns_ratio"`

	// StreamEqualsMaterialized: drained+sorted stream ≡ Update() bit-for-
	// bit, and the top-K heap ≡ the sorted slice truncated to K.
	StreamEqualsMaterialized bool `json:"stream_equals_materialized"`
	// DeltaEqualsScratch: two-batch incremental union ≡ one-shot join.
	DeltaEqualsScratch bool `json:"delta_equals_scratch"`

	// Scale workload: dataset.ScaleN at ScaleRecords, threshold 0.6.
	ScaleRecords     int     `json:"scale_records"`
	ScaleDups        int     `json:"scale_dups"`
	ScaleThreshold   float64 `json:"scale_threshold"`
	ScaleCandidates  int     `json:"scale_candidates"`
	ScaleMatchRecall float64 `json:"scale_match_recall"`
	ScaleWallSeconds float64 `json:"scale_wall_seconds"`
	ScaleNsPerRecord int64   `json:"scale_ns_per_record"`

	// Compressed-postings footprint of the scale index vs the flat
	// []int32 layout it replaced (4 bytes/entry, before append slack).
	PostingsEntries  int     `json:"postings_entries"`
	PostingsBytes    int     `json:"postings_bytes"`
	FlatBytes        int     `json:"flat_bytes"`
	CompressionRatio float64 `json:"compression_ratio"`

	// PeakRSSMB is the process high-water mark (VmHWM) after the scale
	// run; -1 if /proc is unavailable.
	PeakRSSMB float64 `json:"peak_rss_mb"`
}

// peakRSSMB reads the process's peak resident set (VmHWM) in MiB, or -1
// if /proc/self/status is unavailable (non-Linux).
func peakRSSMB() float64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return -1
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return -1
		}
		kb, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return -1
		}
		return kb / 1024
	}
	return -1
}

func scoredEqual(a, b []simjoin.ScoredPair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runScale measures the streaming join path against the materialized one
// and drives the large synthetic workload. Gates (any failure exits 1):
//
//   - bytes_per_op of the streamed path ≤ 50% of the materialized path
//     on the baseline workload;
//   - ns_per_op of the streamed path ≤ 1.25× the materialized path;
//   - the drained stream is bit-identical (pairs and order) to Update(),
//     and the bounded heap to the sorted slice truncated to K;
//   - two-batch delta union ≡ one-shot join on the baseline workload;
//   - the scale workload completes with every planted duplicate found
//     and peak RSS under maxRSSMB.
func runScale(baseN, scaleRecords, topK int, maxRSSMB float64) (*ScaleReport, bool) {
	rep := &ScaleReport{
		GoVersion:       runtime.Version(),
		NumCPU:          runtime.NumCPU(),
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		BaselineRecords: baseN,
		Threshold:       0.3,
		TopK:            topK,
		ScaleRecords:    scaleRecords,
		ScaleDups:       scaleRecords / 20,
		ScaleThreshold:  0.6,
	}
	ok := true

	// ---- Baseline workload: materialized vs streamed. ----
	d := dataset.RestaurantN(1, baseN, baseN/8)
	tab := d.Table
	tab.TokenIDs()
	opts := simjoin.Options{Threshold: rep.Threshold}

	rep.Materialized = measure("simjoin/materialized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ix := simjoin.NewIndex(tab, opts)
			if out := ix.Update(); len(out) == 0 {
				b.Fatal("empty join")
			}
		}
	})
	rep.Streamed = measure("simjoin/streamed-topk", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ix := simjoin.NewIndex(tab, opts)
			rank := engine.NewTopK(topK, simjoin.CompareScored)
			for sp := range ix.UpdateSeq() {
				rank.Push(sp)
			}
			if out := rank.Ranked(); len(out) == 0 {
				b.Fatal("empty join")
			}
		}
	})
	rep.BytesReduction = 1 - float64(rep.Streamed.BytesPerOp)/float64(rep.Materialized.BytesPerOp)
	rep.NsRatio = float64(rep.Streamed.NsPerOp) / float64(rep.Materialized.NsPerOp)
	if rep.BytesReduction < 0.5 {
		fmt.Fprintf(os.Stderr, "FAIL: streamed path allocates %.1f%% less than materialized; need >= 50%%\n", rep.BytesReduction*100)
		ok = false
	}
	if rep.NsRatio > 1.25 {
		fmt.Fprintf(os.Stderr, "FAIL: streamed path is %.2fx the materialized path's ns/op; cap 1.25x\n", rep.NsRatio)
		ok = false
	}

	// ---- Equality gates on the baseline workload. ----
	want := simjoin.Join(tab, opts)
	var drained []simjoin.ScoredPair
	rank := engine.NewTopK(topK, simjoin.CompareScored)
	for sp := range simjoin.NewIndex(tab, opts).UpdateSeq() {
		drained = append(drained, sp)
		rank.Push(sp)
	}
	simjoin.SortScored(drained)
	truncated := want
	if len(truncated) > topK {
		truncated = truncated[:topK]
	}
	rep.StreamEqualsMaterialized = scoredEqual(drained, want) && scoredEqual(rank.Ranked(), truncated)
	if !rep.StreamEqualsMaterialized {
		fmt.Fprintln(os.Stderr, "FAIL: streamed candidates are not bit-identical to the materialized path")
		ok = false
	}

	// Delta ≡ scratch: absorb the table in two batches through one index.
	half := record.NewTable(tab.Schema...)
	ix := simjoin.NewIndex(half, opts)
	var union []simjoin.ScoredPair
	for _, hi := range []int{tab.Len() / 2, tab.Len()} {
		for i := half.Len(); i < hi; i++ {
			if len(tab.Source) > 0 {
				half.AppendFrom(tab.Source[i], tab.Records[i].Values...)
			} else {
				half.Append(tab.Records[i].Values...)
			}
		}
		union = append(union, ix.Update()...)
	}
	simjoin.SortScored(union)
	rep.DeltaEqualsScratch = scoredEqual(union, want)
	if !rep.DeltaEqualsScratch {
		fmt.Fprintln(os.Stderr, "FAIL: two-batch delta union differs from one-shot join")
		ok = false
	}

	// ---- Scale workload: stream ScaleRecords records through a bounded
	// heap; nothing materializes the candidate set. ----
	sd := dataset.ScaleN(1, scaleRecords, rep.ScaleDups)
	stab := sd.Table
	stab.TokenIDs()
	sopts := simjoin.Options{Threshold: rep.ScaleThreshold}
	six := simjoin.NewIndex(stab, sopts)
	srank := engine.NewTopK(topK, simjoin.CompareScored)
	matchesSeen := 0
	start := time.Now()
	for sp := range six.UpdateSeq() {
		rep.ScaleCandidates++
		if sd.Matches.Has(sp.Pair.A, sp.Pair.B) {
			matchesSeen++
		}
		srank.Push(sp)
	}
	rep.ScaleWallSeconds = time.Since(start).Seconds()
	rep.ScaleNsPerRecord = time.Since(start).Nanoseconds() / int64(scaleRecords)
	if top := srank.Ranked(); len(top) == 0 {
		fmt.Fprintln(os.Stderr, "FAIL: scale workload produced no candidates")
		ok = false
	}
	rep.ScaleMatchRecall = float64(matchesSeen) / float64(sd.Matches.Len())
	if matchesSeen != sd.Matches.Len() {
		fmt.Fprintf(os.Stderr, "FAIL: scale join found %d of %d planted duplicates\n", matchesSeen, sd.Matches.Len())
		ok = false
	}

	rep.PostingsEntries = six.PostingsEntries()
	rep.PostingsBytes = six.PostingsBytes()
	rep.FlatBytes = 4 * rep.PostingsEntries
	if rep.PostingsBytes > 0 {
		rep.CompressionRatio = float64(rep.FlatBytes) / float64(rep.PostingsBytes)
	}

	rep.PeakRSSMB = peakRSSMB()
	if rep.PeakRSSMB > maxRSSMB {
		fmt.Fprintf(os.Stderr, "FAIL: peak RSS %.0f MB exceeds the %.0f MB cap\n", rep.PeakRSSMB, maxRSSMB)
		ok = false
	}
	return rep, ok
}
