package main

// The -tenant mode gates multi-tenant crowderd: one daemon, many tenant
// tables, one shared worker pool draining them all through the
// cross-table claim plane (POST /claim). Three properties are pinned:
//
//  1. No cross-tenant interference: light tenants' p99 claim wait with a
//     heavy neighbor (a large resolve holding a deep HIT backlog) must
//     stay within a small factor of the light-tenants-only baseline.
//     Deficit-round-robin dispatch is what makes this hold; a FIFO
//     dispatcher parks light HITs behind the heavy backlog for its whole
//     drain (seconds), far beyond the gate.
//  2. Claim throughput scales with pool size: workers are the scarce
//     resource (the paper's core economic premise), so adding workers
//     must add aggregate throughput.
//  3. Fairness does not corrupt results: every tenant's matches are
//     bit-identical to the same session run alone on an isolated
//     single-table server. Tenants share workers, never verdicts.
//
// Claim waits are read from GET /metrics — the bench gates on the same
// numbers an operator's dashboard graphs.

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/crowder/crowder/internal/dataset"
	"github.com/crowder/crowder/internal/record"
	"github.com/crowder/crowder/internal/service"
)

// tenantSpec is one tenant table in a bench group.
type tenantSpec struct {
	table    string
	tenant   string
	priority int
	schema   []string
	rows     [][]string
	truth    record.PairSet
	rounds   int
	// clusterSize is pairs per HIT: 5 for light tenants, small for the
	// heavy one so its backlog is deep.
	clusterSize int
	threshold   float64
	seed        int64
	// waitForBacklog, when > 0, delays this spec's first round until
	// some table on the server holds at least this many open
	// assignments — how the contended phase guarantees the heavy
	// backlog exists before light tenants start resolving.
	waitForBacklog int
}

// tenantMatch is one row of a table's final match list; compared
// exactly (confidence included) across group and isolated runs.
type tenantMatch struct {
	A          int     `json:"a"`
	B          int     `json:"b"`
	Confidence float64 `json:"confidence"`
}

// TenantRun is one tenant's outcome in a group run.
type TenantRun struct {
	Tenant         string  `json:"tenant"`
	Table          string  `json:"table"`
	Priority       int     `json:"priority"`
	HITs           int     `json:"hits"`
	Matches        int     `json:"matches"`
	Claims         int64   `json:"claims"`
	ClaimWaitP50Ms float64 `json:"claim_wait_p50_ms"`
	ClaimWaitP99Ms float64 `json:"claim_wait_p99_ms"`
}

// ThroughputPoint is one pool size's aggregate claim rate.
type ThroughputPoint struct {
	Workers      int     `json:"workers"`
	Claims       int64   `json:"claims"`
	WindowMs     float64 `json:"window_ms"`
	ClaimsPerSec float64 `json:"claims_per_sec"`
}

// TenantReport is the file layout of BENCH_tenant.json.
type TenantReport struct {
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"go_max_procs"`

	LightTenants int `json:"light_tenants"`
	PoolWorkers  int `json:"pool_workers"`
	HeavyHITs    int `json:"heavy_hits"`

	// Interference gate: light tenants' worst p99 claim wait without and
	// with the heavy neighbor. The allowance is
	// max(ratio × baseline, floor): the floor absorbs scheduler noise on
	// millisecond-scale baselines; a FIFO regression overshoots it by
	// orders of magnitude (the heavy drain takes seconds).
	BaselineLightP99Ms  float64 `json:"baseline_light_p99_ms"`
	ContendedLightP99Ms float64 `json:"contended_light_p99_ms"`
	InterferenceRatio   float64 `json:"interference_ratio"`
	AllowedRatio        float64 `json:"allowed_ratio"`
	FloorMs             float64 `json:"floor_ms"`
	// HeavyP99Ms documents the price the heavy tenant pays for fairness
	// (informational, not gated).
	HeavyP99Ms float64 `json:"heavy_p99_ms"`

	// Throughput gate: aggregate claims/sec must grow with pool size.
	Throughput       []ThroughputPoint `json:"throughput"`
	ThroughputFactor float64           `json:"throughput_factor"`
	MinFactor        float64           `json:"min_factor"`

	// Identity gate: every tenant's matches across the baseline,
	// contended and isolated runs are bit-identical.
	BitIdentical bool `json:"bit_identical"`

	Baseline  []TenantRun `json:"baseline"`
	Contended []TenantRun `json:"contended"`
}

// tenantThink is the simulated judging time per assignment. It makes
// workers — not the HTTP stack — the bottleneck, so claim throughput
// scales with pool size even on a single-CPU host.
const tenantThink = 2 * time.Millisecond

// startBenchServer brings up a loopback crowderd.
func startBenchServer(maxResolves int) (url string, shutdown func()) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: service.New(service.Options{MaxResolves: maxResolves})}
	go func() { _ = httpSrv.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() { _ = httpSrv.Close() }
}

// startPool launches shared-pool workers that drain the server's
// cross-table claim plane, answering truthfully per the claimed
// table's ground truth with tenantThink of judging time per
// assignment. Returns a per-table claim counter map and a stop func.
func startPool(url string, workers int, truth map[string]record.PairSet, think time.Duration) (claims *sync.Map, stop func()) {
	var done atomic.Bool
	var wg sync.WaitGroup
	claims = &sync.Map{}
	client := &http.Client{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !done.Load() {
				var cl struct {
					Token string `json:"token"`
					Table string `json:"table"`
					HIT   struct {
						Pairs []struct {
							A int `json:"a"`
							B int `json:"b"`
						} `json:"pairs"`
					} `json:"hit"`
				}
				if err := benchCall(client, "POST", url+"/claim",
					map[string]any{"worker": fmt.Sprintf("w%d", w), "max_wait_ms": 100}, &cl); err != nil {
					continue // empty plane: long-poll expired
				}
				t := truth[cl.Table]
				if t == nil {
					log.Fatalf("claimed from unknown table %q", cl.Table)
				}
				time.Sleep(think) // judging
				var answers []map[string]any
				for _, p := range cl.HIT.Pairs {
					answers = append(answers, map[string]any{
						"a": p.A, "b": p.B, "match": t.Has(record.ID(p.A), record.ID(p.B)),
					})
				}
				if err := benchCall(client, "POST", url+"/answer",
					map[string]any{"token": cl.Token, "answers": answers}, nil); err == nil {
					c, _ := claims.LoadOrStore(cl.Table, &atomic.Int64{})
					c.(*atomic.Int64).Add(1)
				}
			}
		}(w)
	}
	return claims, func() { done.Store(true); wg.Wait() }
}

// openAssignments sums a table's open assignments via GET /tables/x/hits.
func openAssignments(client *http.Client, url, table string) int {
	var body struct {
		Hits []struct {
			Open int `json:"open"`
		} `json:"hits"`
	}
	if err := benchCall(client, "GET", url+"/tables/"+table+"/hits", nil, &body); err != nil {
		return 0
	}
	n := 0
	for _, h := range body.Hits {
		n += h.Open
	}
	return n
}

// runGroup stands up one crowderd with every spec's table, drains all
// resolves through a shared pool, and returns each table's final match
// list, total HITs, and its dispatcher stats from /metrics.
func runGroup(specs []*tenantSpec, workers int) (map[string][]tenantMatch, map[string]TenantRun) {
	url, shutdown := startBenchServer(4)
	defer shutdown()
	client := &http.Client{}

	truth := make(map[string]record.PairSet, len(specs))
	for _, sp := range specs {
		truth[sp.table] = sp.truth
		if err := benchCall(client, "POST", url+"/tables/"+sp.table, map[string]any{
			"schema": sp.schema,
			"options": map[string]any{
				"threshold": sp.threshold, "hit_type": "pair",
				"cluster_size": sp.clusterSize, "seed": sp.seed,
				"backend": "queue", "tenant": sp.tenant, "priority": sp.priority,
				// Majority vote makes truthful unanimous answers exactly
				// truthful regardless of which pool worker judged what —
				// the property the bit-identity gate rests on.
				"aggregation": "majority-vote",
			},
		}, nil); err != nil {
			log.Fatal(err)
		}
	}

	claims, stopPool := startPool(url, workers, truth, tenantThink)

	hits := make(map[string]*int, len(specs))
	var wg sync.WaitGroup
	for _, sp := range specs {
		n := 0
		hits[sp.table] = &n
		wg.Add(1)
		go func(sp *tenantSpec, hits *int) {
			defer wg.Done()
			if sp.waitForBacklog > 0 {
				deadline := time.Now().Add(30 * time.Second)
				for {
					deep := false
					for _, other := range specs {
						if other != sp && openAssignments(client, url, other.table) >= sp.waitForBacklog {
							deep = true
							break
						}
					}
					if deep {
						break
					}
					if time.Now().After(deadline) {
						log.Fatalf("%s: no neighbor ever built a %d-assignment backlog", sp.table, sp.waitForBacklog)
					}
					time.Sleep(time.Millisecond)
				}
			}
			batch := (len(sp.rows) + sp.rounds - 1) / sp.rounds
			for r := 0; r < sp.rounds; r++ {
				lo, hi := r*batch, (r+1)*batch
				if hi > len(sp.rows) {
					hi = len(sp.rows)
				}
				if err := benchCall(client, "POST", url+"/tables/"+sp.table+"/records",
					map[string]any{"rows": sp.rows[lo:hi]}, nil); err != nil {
					log.Fatal(err)
				}
				var kicked struct {
					Job int `json:"job"`
				}
				if err := benchCall(client, "POST", url+"/tables/"+sp.table+"/resolve", map[string]any{}, &kicked); err != nil {
					log.Fatal(err)
				}
				for {
					var status struct {
						State  string `json:"state"`
						Error  string `json:"error"`
						Result struct {
							HITs int `json:"hits"`
						} `json:"result"`
					}
					if err := benchCall(client, "GET",
						fmt.Sprintf("%s/tables/%s/jobs/%d", url, sp.table, kicked.Job), nil, &status); err != nil {
						log.Fatal(err)
					}
					if status.State == "done" {
						*hits += status.Result.HITs
						break
					}
					if status.State != "running" && status.State != "queued" {
						log.Fatalf("%s job %d ended %s: %s", sp.table, kicked.Job, status.State, status.Error)
					}
					time.Sleep(time.Millisecond)
				}
			}
		}(sp, hits[sp.table])
	}
	wg.Wait()
	stopPool()

	// Collect matches and the dispatcher's per-session stats.
	matches := make(map[string][]tenantMatch, len(specs))
	for _, sp := range specs {
		var body struct {
			Matches []tenantMatch `json:"matches"`
		}
		if err := benchCall(client, "GET", url+"/tables/"+sp.table+"/matches", nil, &body); err != nil {
			log.Fatal(err)
		}
		matches[sp.table] = body.Matches
	}
	var metrics struct {
		Sessions []struct {
			Tenant         string  `json:"tenant"`
			Table          string  `json:"table"`
			Weight         int     `json:"weight"`
			ClaimWaitP50Ms float64 `json:"claim_wait_p50_ms"`
			ClaimWaitP99Ms float64 `json:"claim_wait_p99_ms"`
		} `json:"sessions"`
	}
	if err := benchCall(client, "GET", url+"/metrics", nil, &metrics); err != nil {
		log.Fatal(err)
	}
	runs := make(map[string]TenantRun, len(specs))
	for _, st := range metrics.Sessions {
		var n int64
		if c, ok := claims.Load(st.Table); ok {
			n = c.(*atomic.Int64).Load()
		}
		runs[st.Table] = TenantRun{
			Tenant: st.Tenant, Table: st.Table, Priority: st.Weight,
			HITs: *hits[st.Table], Matches: len(matches[st.Table]), Claims: n,
			ClaimWaitP50Ms: st.ClaimWaitP50Ms, ClaimWaitP99Ms: st.ClaimWaitP99Ms,
		}
	}
	return matches, runs
}

// measureThroughput drains a deep single-table backlog with the given
// pool size for a fixed window and reports aggregate accepted claims.
func measureThroughput(spec *tenantSpec, workers int, window time.Duration) ThroughputPoint {
	url, shutdown := startBenchServer(4)
	defer shutdown()
	client := &http.Client{}
	if err := benchCall(client, "POST", url+"/tables/"+spec.table, map[string]any{
		"schema": spec.schema,
		"options": map[string]any{
			"threshold": spec.threshold, "hit_type": "pair",
			"cluster_size": spec.clusterSize, "seed": spec.seed,
			"backend": "queue", "tenant": spec.tenant,
			"aggregation": "majority-vote",
		},
	}, nil); err != nil {
		log.Fatal(err)
	}
	if err := benchCall(client, "POST", url+"/tables/"+spec.table+"/records",
		map[string]any{"rows": spec.rows}, nil); err != nil {
		log.Fatal(err)
	}
	var kicked struct {
		Job int `json:"job"`
	}
	if err := benchCall(client, "POST", url+"/tables/"+spec.table+"/resolve", map[string]any{}, &kicked); err != nil {
		log.Fatal(err)
	}
	// Let the backlog build so the window never runs dry.
	deadline := time.Now().Add(30 * time.Second)
	for openAssignments(client, url, spec.table) < 200 {
		if time.Now().After(deadline) {
			log.Fatal("throughput backlog never reached 200 open assignments")
		}
		time.Sleep(time.Millisecond)
	}

	truth := map[string]record.PairSet{spec.table: spec.truth}
	start := time.Now()
	claims, stopPool := startPool(url, workers, truth, tenantThink)
	time.Sleep(window)
	stopPool()
	elapsed := time.Since(start)
	// Abandon the resolve; the window is what was measured.
	_ = benchCall(client, "DELETE", fmt.Sprintf("%s/tables/%s/jobs/%d", url, spec.table, kicked.Job), nil, nil)

	var total int64
	if c, ok := claims.Load(spec.table); ok {
		total = c.(*atomic.Int64).Load()
	}
	return ThroughputPoint{
		Workers:      workers,
		Claims:       total,
		WindowMs:     float64(elapsed.Microseconds()) / 1000,
		ClaimsPerSec: float64(total) / elapsed.Seconds(),
	}
}

// tenantSpecs builds the bench's tenant population: nLight small
// restaurant tenants plus (optionally) one heavy product tenant whose
// single resolve posts a deep backlog of single-pair HITs.
func tenantSpecs(nLight int, withHeavy bool) []*tenantSpec {
	var specs []*tenantSpec
	for i := 0; i < nLight; i++ {
		d := dataset.RestaurantN(3, 60+10*i, 10+2*i)
		sp := &tenantSpec{
			table: fmt.Sprintf("light%d", i), tenant: fmt.Sprintf("light%d", i),
			priority: 2, schema: d.Table.Schema, truth: d.Matches,
			rounds: 2, clusterSize: 5, threshold: 0.4, seed: int64(i + 1),
		}
		for j := range d.Table.Records {
			sp.rows = append(sp.rows, d.Table.Records[j].Values)
		}
		specs = append(specs, sp)
	}
	if withHeavy {
		d := dataset.ProductDup(2, dataset.Product(1))
		sp := &tenantSpec{
			table: "heavy", tenant: "heavy",
			priority: 1, schema: d.Table.Schema, truth: d.Matches,
			rounds: 1, clusterSize: 2, threshold: 0.5, seed: 99,
		}
		for j := range d.Table.Records {
			sp.rows = append(sp.rows, d.Table.Records[j].Values)
		}
		// Light tenants hold their rounds until the heavy backlog is real.
		for _, light := range specs {
			light.waitForBacklog = 100
		}
		specs = append(specs, sp)
	}
	return specs
}

// matchesEqual compares two match lists exactly.
func matchesEqual(a, b []tenantMatch) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runTenant benchmarks the multi-tenant claim plane and enforces its
// acceptance gates.
func runTenant(nLight, workers int) (*TenantReport, bool) {
	// The group phases need >= 3 workers: every HIT wants 3 assignments
	// and the queue hands a given HIT to a given worker at most once, so
	// a smaller pool can never finish a resolve.
	if nLight < 1 || workers < 3 {
		log.Fatalf("tenant mode needs -tenants >= 1 and -tenant-workers >= 3 (got %d, %d)", nLight, workers)
	}
	rep := &TenantReport{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),

		LightTenants: nLight,
		PoolWorkers:  workers,

		AllowedRatio: 3,
		FloorMs:      100,
		MinFactor:    1.5,
	}

	// Phase 1 — baseline: light tenants only on the shared pool.
	baseSpecs := tenantSpecs(nLight, false)
	baseMatches, baseRuns := runGroup(baseSpecs, workers)
	for _, sp := range baseSpecs {
		run := baseRuns[sp.table]
		rep.Baseline = append(rep.Baseline, run)
		if run.ClaimWaitP99Ms > rep.BaselineLightP99Ms {
			rep.BaselineLightP99Ms = run.ClaimWaitP99Ms
		}
	}

	// Phase 2 — contended: same light tenants with a heavy neighbor.
	contSpecs := tenantSpecs(nLight, true)
	contMatches, contRuns := runGroup(contSpecs, workers)
	for _, sp := range contSpecs {
		run := contRuns[sp.table]
		rep.Contended = append(rep.Contended, run)
		if sp.table == "heavy" {
			rep.HeavyP99Ms = run.ClaimWaitP99Ms
			rep.HeavyHITs = run.HITs
			continue
		}
		if run.ClaimWaitP99Ms > rep.ContendedLightP99Ms {
			rep.ContendedLightP99Ms = run.ClaimWaitP99Ms
		}
	}
	if rep.BaselineLightP99Ms > 0 {
		rep.InterferenceRatio = rep.ContendedLightP99Ms / rep.BaselineLightP99Ms
	}

	// Phase 3 — throughput scaling: the same deep backlog drained by a
	// pool of 1 vs the full pool.
	heavyOnly := tenantSpecs(0, true)[0]
	heavyOnly.waitForBacklog = 0
	const window = 500 * time.Millisecond
	for _, w := range []int{1, workers} {
		rep.Throughput = append(rep.Throughput, measureThroughput(heavyOnly, w, window))
	}
	small, large := rep.Throughput[0], rep.Throughput[len(rep.Throughput)-1]
	if small.Claims > 0 {
		rep.ThroughputFactor = large.ClaimsPerSec / small.ClaimsPerSec
	}

	// Phase 4 — identity: every tenant alone on an isolated server must
	// produce bit-identical matches to both shared runs.
	rep.BitIdentical = true
	for _, sp := range contSpecs {
		iso := *sp
		iso.waitForBacklog = 0
		isoMatches, _ := runGroup([]*tenantSpec{&iso}, workers)
		if !matchesEqual(isoMatches[sp.table], contMatches[sp.table]) {
			fmt.Fprintf(os.Stderr, "FAIL: %s: contended matches differ from the isolated run\n", sp.table)
			rep.BitIdentical = false
		}
		if sp.table != "heavy" && !matchesEqual(isoMatches[sp.table], baseMatches[sp.table]) {
			fmt.Fprintf(os.Stderr, "FAIL: %s: baseline matches differ from the isolated run\n", sp.table)
			rep.BitIdentical = false
		}
	}

	ok := true
	allowed := rep.AllowedRatio * rep.BaselineLightP99Ms
	if allowed < rep.FloorMs {
		allowed = rep.FloorMs
	}
	if rep.ContendedLightP99Ms > allowed {
		fmt.Fprintf(os.Stderr,
			"FAIL: light-tenant p99 claim wait %.1fms with a heavy neighbor exceeds the allowance %.1fms (baseline %.1fms)\n",
			rep.ContendedLightP99Ms, allowed, rep.BaselineLightP99Ms)
		ok = false
	}
	if rep.ThroughputFactor < rep.MinFactor {
		fmt.Fprintf(os.Stderr,
			"FAIL: claim throughput grew only %.2fx from %d to %d workers (need >= %.2fx)\n",
			rep.ThroughputFactor, small.Workers, large.Workers, rep.MinFactor)
		ok = false
	}
	if !rep.BitIdentical {
		ok = false
	}
	return rep, ok
}
