package main

// The -recover mode gates durable session storage: a session reloaded
// from its WAL + snapshot must be indistinguishable from one that never
// went down. Two drills are run and both must hold exactly:
//
//  1. Library reload: the Product+Dup workload is resolved in deltas
//     with every mutation logged to a FileStore, the store is reopened
//     cold (as a crashed process would find it), and the restored
//     resolver continues side by side with a never-crashed control —
//     same matches bit-for-bit, same candidates, same cost, and zero
//     re-issued HITs for pairs already judged. Covered for the
//     single-index session and the sharded (Shards=4) one, whose
//     frozen per-delta index weights are the hard part of replay.
//  2. Crash drill: a real crowderd process is SIGKILLed mid-resolve
//     after external workers answered part of a queue-backend posting
//     over HTTP. The restarted daemon must recover the session before
//     serving, re-post only the unanswered HITs, never hand a worker a
//     pair that was answered (and paid) before the kill, and finish
//     with matches identical to a daemon that never crashed.
//
// The report also records what durability costs: recovery wall time
// and the WAL/snapshot bytes on disk at the crash point.

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"github.com/crowder/crowder"
	"github.com/crowder/crowder/internal/dataset"
	"github.com/crowder/crowder/internal/record"
)

// RecoverRun is one library reload drill: log, crash, reload, continue.
type RecoverRun struct {
	Name   string `json:"name"`
	Shards int    `json:"shards"`
	Rows   int    `json:"rows"`
	Deltas int    `json:"deltas"`

	EventsReplayed int     `json:"events_replayed"`
	WALBytes       int64   `json:"wal_bytes"`
	SnapshotBytes  int64   `json:"snapshot_bytes"`
	RecoveryMs     float64 `json:"recovery_ms"`

	Matches          int  `json:"matches"`
	ContinuationHITs int  `json:"continuation_hits"`
	ReissuedHITs     int  `json:"reissued_hits"`
	MatchesIdentical bool `json:"matches_identical"`
}

// CrashRun is the crowderd SIGKILL drill.
type CrashRun struct {
	OpenHITsBeforeKill int     `json:"open_hits_before_kill"`
	AnsweredBeforeKill int     `json:"answered_before_kill"`
	RecoveredOpenHITs  int     `json:"recovered_open_hits"`
	ReclaimedAfterKill int     `json:"reclaimed_after_kill"`
	ReissuedJudged     int     `json:"reissued_judged_pairs"`
	RestartMs          float64 `json:"restart_ms"`
	WALBytes           int64   `json:"wal_bytes"`
	SnapshotBytes      int64   `json:"snapshot_bytes"`
	Matches            int     `json:"matches"`
	MatchesIdentical   bool    `json:"matches_identical"`
}

// RecoverReport is the full -recover output.
type RecoverReport struct {
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"go_max_procs"`

	Runs     []RecoverRun `json:"runs"`
	Crash    *CrashRun    `json:"crash"`
	Failures []string     `json:"failures,omitempty"`
}

// sameMatches compares two match lists exactly, confidence included.
func sameMatches(a, b []crowder.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Pair != b[i].Pair || a[i].Confidence != b[i].Confidence {
			return false
		}
	}
	return true
}

// runRecoverLibrary runs one library reload drill at the given shard
// count and appends any gate violations to failures.
func runRecoverLibrary(shards int, failures *[]string) RecoverRun {
	const tau = 0.5
	d := dataset.ProductDup(2, dataset.Product(1))
	rows := make([][]string, d.Table.Len())
	for i := range d.Table.Records {
		rows[i] = d.Table.Records[i].Values
	}
	var oracle []crowder.Pair
	for _, p := range d.Matches.Slice() {
		oracle = append(oracle, crowder.Pair{A: int(p.A), B: int(p.B)})
	}
	n := len(rows)
	batches := [][][]string{rows[: n/2 : n/2], rows[n/2 : 3*n/4], rows[3*n/4 : 9*n/10]}
	extra := rows[9*n/10:]

	run := RecoverRun{
		Name:   fmt.Sprintf("product+dup/shards=%d", shards),
		Shards: shards,
		Rows:   n,
		Deltas: len(batches),
	}
	fail := func(format string, args ...any) {
		*failures = append(*failures, run.Name+": "+fmt.Sprintf(format, args...))
	}
	opts := crowder.Options{
		Threshold: tau,
		HITType:   crowder.PairHITs,
		Oracle:    oracle,
		Seed:      7,
		Shards:    shards,
	}

	// Control: the session that never crashes.
	control, err := crowder.NewResolver(crowder.NewTable(d.Table.Schema...), opts)
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range batches {
		control.AppendBatch(b...)
		if _, err := control.ResolveDelta(); err != nil {
			log.Fatal(err)
		}
	}

	// Durable twin: same deltas, every mutation logged, then the store is
	// dropped without Close — exactly what SIGKILL leaves behind.
	dir, err := os.MkdirTemp("", "bench-recover-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	dopts := opts
	fl, rec0, err := crowder.OpenStore(dir, crowder.StoreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if !rec0.Empty() {
		log.Fatalf("fresh store dir %s not empty", dir)
	}
	dopts.Store = fl
	durable, err := crowder.NewResolver(crowder.NewTable(d.Table.Schema...), dopts)
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range batches {
		durable.AppendBatch(b...)
		if _, err := durable.ResolveDelta(); err != nil {
			log.Fatal(err)
		}
	}

	// Cold reload, timed: open the store as a restarted process would and
	// rebuild the resolver from snapshot + WAL tail.
	start := time.Now()
	fl2, rec, err := crowder.OpenStore(dir, crowder.StoreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer fl2.Close()
	ropts := opts
	ropts.Store = fl2
	restored, err := crowder.RestoreResolver(rec, ropts)
	if err != nil {
		log.Fatal(err)
	}
	run.RecoveryMs = float64(time.Since(start)) / float64(time.Millisecond)
	run.EventsReplayed = rec.Events
	run.WALBytes = rec.WALBytes
	run.SnapshotBytes = rec.SnapshotBytes

	// Continue both sessions with one more delta: the reload is invisible
	// iff they agree bit-for-bit and the restored session pays for
	// exactly what the control pays for.
	control.AppendBatch(extra...)
	want, err := control.ResolveDelta()
	if err != nil {
		log.Fatal(err)
	}
	restored.AppendBatch(extra...)
	got, err := restored.ResolveDelta()
	if err != nil {
		log.Fatal(err)
	}
	run.Matches = len(got.Matches)
	run.ContinuationHITs = want.HITs
	run.ReissuedHITs = got.HITs - want.HITs
	run.MatchesIdentical = sameMatches(want.Matches, got.Matches)
	if !run.MatchesIdentical {
		fail("reloaded matches differ from never-crashed control (%d vs %d)", len(got.Matches), len(want.Matches))
	}
	if run.ReissuedHITs != 0 {
		fail("reloaded continuation issued %d HITs vs control %d", got.HITs, want.HITs)
	}
	if got.Candidates != want.Candidates || got.TotalPairs != want.TotalPairs {
		fail("reloaded accounting (%d cand, %d pairs) vs control (%d, %d)",
			got.Candidates, got.TotalPairs, want.Candidates, want.TotalPairs)
	}
	if got.CostDollars != want.CostDollars {
		fail("reloaded cost %v vs control %v", got.CostDollars, want.CostDollars)
	}
	return run
}

type recoverPairJSON struct {
	A int `json:"a"`
	B int `json:"b"`
}

type recoverHITJSON struct {
	ID    int               `json:"id"`
	Pairs []recoverPairJSON `json:"pairs"`
}

// startCrowderd launches the daemon and waits for /healthz.
func startCrowderd(bin, addr, dataDir string) (*exec.Cmd, error) {
	cmd := exec.Command(bin, "-addr", addr, "-data-dir", dataDir, "-sweep", "1s")
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	client := &http.Client{Timeout: time.Second}
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := client.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd, nil
			}
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			return nil, fmt.Errorf("crowderd on %s never became healthy: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func freeAddr() string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// storeBytes sums the WAL and snapshot sizes under a session data dir.
func storeBytes(dir string) (wal, snap int64) {
	_ = filepath.WalkDir(dir, func(path string, de os.DirEntry, err error) error {
		if err != nil || de.IsDir() {
			return nil
		}
		info, err := de.Info()
		if err != nil {
			return nil
		}
		switch filepath.Ext(path) {
		case ".log":
			wal += info.Size()
		case ".snap":
			snap += info.Size()
		}
		return nil
	})
	return wal, snap
}

// crashTable drives one crowderd through create/append/resolve and
// drains its queue with a single worker, asserting (via record) that no
// pair in skip is ever served. It returns the sorted final matches.
func crashDrain(client *http.Client, url string, truth record.PairSet, skip map[[2]int]bool, reissued *int) ([]tenantMatch, int, error) {
	var kicked struct {
		Job int `json:"job"`
	}
	if err := benchCall(client, "POST", url+"/tables/bench/resolve", map[string]any{}, &kicked); err != nil {
		return nil, 0, err
	}
	jobURL := fmt.Sprintf("%s/tables/bench/jobs/%d", url, kicked.Job)
	claims := 0
	deadline := time.Now().Add(60 * time.Second)
	for {
		var status struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := benchCall(client, "GET", jobURL, nil, &status); err != nil {
			return nil, 0, err
		}
		if status.State == "done" {
			break
		}
		if status.State != "running" && status.State != "queued" {
			return nil, 0, fmt.Errorf("job ended in state %q: %s", status.State, status.Error)
		}
		if time.Now().After(deadline) {
			return nil, 0, fmt.Errorf("queue never drained")
		}
		var claim struct {
			Token string         `json:"token"`
			HIT   recoverHITJSON `json:"hit"`
		}
		if err := benchCall(client, "POST", url+"/tables/bench/hits/claim",
			map[string]any{"worker": "w"}, &claim); err != nil {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		claims++
		var answers []map[string]any
		for _, p := range claim.HIT.Pairs {
			if skip != nil && skip[[2]int{p.A, p.B}] {
				*reissued++
			}
			answers = append(answers, map[string]any{
				"a": p.A, "b": p.B,
				"match": truth.Has(record.ID(p.A), record.ID(p.B)),
			})
		}
		if err := benchCall(client, "POST", url+"/tables/bench/hits/answer",
			map[string]any{"token": claim.Token, "answers": answers}, nil); err != nil {
			return nil, 0, err
		}
	}
	var body struct {
		Matches []tenantMatch `json:"matches"`
	}
	if err := benchCall(client, "GET", url+"/tables/bench/matches", nil, &body); err != nil {
		return nil, 0, err
	}
	ms := body.Matches
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].A != ms[j].A {
			return ms[i].A < ms[j].A
		}
		return ms[i].B < ms[j].B
	})
	return ms, claims, nil
}

// runRecoverCrash SIGKILLs a real crowderd mid-resolve and restarts it.
func runRecoverCrash(failures *[]string) *CrashRun {
	fail := func(format string, args ...any) {
		*failures = append(*failures, "crash: "+fmt.Sprintf(format, args...))
	}
	tmp, err := os.MkdirTemp("", "bench-crash-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)
	bin := filepath.Join(tmp, "crowderd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/crowderd")
	if out, err := build.CombinedOutput(); err != nil {
		log.Fatalf("building crowderd: %v\n%s", err, out)
	}

	d := dataset.RestaurantN(4, 80, 15)
	rows := make([][]string, d.Table.Len())
	for i := range d.Table.Records {
		rows[i] = d.Table.Records[i].Values
	}
	truth := d.Matches
	tableReq := map[string]any{
		"schema": d.Table.Schema,
		"options": map[string]any{
			"threshold": 0.4, "hit_type": "pair", "cluster_size": 1,
			"seed": 7, "backend": "queue", "assignments": 1,
			"aggregation": "majority-vote",
		},
	}
	client := &http.Client{Timeout: 10 * time.Second}
	run := &CrashRun{}

	// Victim daemon: create, append, resolve, answer half, SIGKILL.
	dataDir := filepath.Join(tmp, "data")
	addr := freeAddr()
	victim, err := startCrowderd(bin, addr, dataDir)
	if err != nil {
		log.Fatal(err)
	}
	url := "http://" + addr
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(benchCall(client, "POST", url+"/tables/bench", tableReq, nil))
	must(benchCall(client, "POST", url+"/tables/bench/records", map[string]any{"rows": rows}, nil))
	must(benchCall(client, "POST", url+"/tables/bench/resolve", map[string]any{}, nil))
	var open struct {
		Hits []recoverHITJSON `json:"hits"`
	}
	deadline := time.Now().Add(15 * time.Second)
	for len(open.Hits) == 0 {
		if time.Now().After(deadline) {
			log.Fatal("victim crowderd never posted HITs")
		}
		must(benchCall(client, "GET", url+"/tables/bench/hits", nil, &open))
		time.Sleep(5 * time.Millisecond)
	}
	run.OpenHITsBeforeKill = len(open.Hits)
	answered := make(map[[2]int]bool)
	for i := 0; i < (len(open.Hits)+1)/2; i++ {
		var claim struct {
			Token string         `json:"token"`
			HIT   recoverHITJSON `json:"hit"`
		}
		must(benchCall(client, "POST", url+"/tables/bench/hits/claim",
			map[string]any{"worker": "w"}, &claim))
		var answers []map[string]any
		for _, p := range claim.HIT.Pairs {
			answers = append(answers, map[string]any{
				"a": p.A, "b": p.B,
				"match": truth.Has(record.ID(p.A), record.ID(p.B)),
			})
			answered[[2]int{p.A, p.B}] = true
		}
		must(benchCall(client, "POST", url+"/tables/bench/hits/answer",
			map[string]any{"token": claim.Token, "answers": answers}, nil))
	}
	run.AnsweredBeforeKill = len(answered)

	// SIGKILL: no flush, no shutdown hook. Whatever was fsynced is all
	// the restarted daemon gets.
	must(victim.Process.Kill())
	_ = victim.Wait()
	run.WALBytes, run.SnapshotBytes = storeBytes(dataDir)

	// Restart on the same data dir; recovery runs before the listener.
	start := time.Now()
	addr2 := freeAddr()
	revived, err := startCrowderd(bin, addr2, dataDir)
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = revived.Process.Kill(); _ = revived.Wait() }()
	run.RestartMs = float64(time.Since(start)) / float64(time.Millisecond)
	url2 := "http://" + addr2

	var tables struct {
		Tables []string `json:"tables"`
	}
	must(benchCall(client, "GET", url2+"/tables", nil, &tables))
	if len(tables.Tables) != 1 || tables.Tables[0] != "bench" {
		fail("recovered tables = %v; want [bench]", tables.Tables)
		return run
	}
	var recoveredOpen struct {
		Hits []recoverHITJSON `json:"hits"`
	}
	must(benchCall(client, "GET", url2+"/tables/bench/hits", nil, &recoveredOpen))
	run.RecoveredOpenHITs = len(recoveredOpen.Hits)
	for _, h := range recoveredOpen.Hits {
		for _, p := range h.Pairs {
			if answered[[2]int{p.A, p.B}] {
				run.ReissuedJudged++
			}
		}
	}

	got, reclaimed, err := crashDrain(client, url2, truth, answered, &run.ReissuedJudged)
	if err != nil {
		fail("draining recovered daemon: %v", err)
		return run
	}
	run.ReclaimedAfterKill = reclaimed
	run.Matches = len(got)
	if reclaimed == 0 {
		fail("nothing left to answer after restart — the kill was not mid-flight")
	}
	if run.ReissuedJudged != 0 {
		fail("%d pre-kill judged pairs re-served after restart", run.ReissuedJudged)
	}

	// Control daemon: same workload, never killed.
	ctlDir := filepath.Join(tmp, "data-control")
	addr3 := freeAddr()
	ctl, err := startCrowderd(bin, addr3, ctlDir)
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = ctl.Process.Kill(); _ = ctl.Wait() }()
	url3 := "http://" + addr3
	must(benchCall(client, "POST", url3+"/tables/bench", tableReq, nil))
	must(benchCall(client, "POST", url3+"/tables/bench/records", map[string]any{"rows": rows}, nil))
	want, _, err := crashDrain(client, url3, truth, nil, nil)
	if err != nil {
		fail("draining control daemon: %v", err)
		return run
	}
	run.MatchesIdentical = matchesEqual(got, want)
	if !run.MatchesIdentical {
		fail("matches after SIGKILL+restart differ from never-crashed control (%d vs %d)", len(got), len(want))
	}
	return run
}

// runRecover is the -recover entrypoint.
func runRecover() (*RecoverReport, bool) {
	rep := &RecoverReport{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, shards := range []int{0, 4} {
		rep.Runs = append(rep.Runs, runRecoverLibrary(shards, &rep.Failures))
	}
	rep.Crash = runRecoverCrash(&rep.Failures)
	if len(rep.Failures) > 0 {
		fmt.Fprintf(os.Stderr, "FAIL: %s\n", strings.Join(rep.Failures, "; "))
	}
	return rep, len(rep.Failures) == 0
}
