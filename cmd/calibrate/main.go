// Command calibrate inspects dataset calibration against Table 2 and
// times the HIT generators — a development aid.
package main

import (
	"fmt"
	"time"

	"github.com/crowder/crowder/internal/dataset"
	"github.com/crowder/crowder/internal/hitgen"
	"github.com/crowder/crowder/internal/simjoin"
)

func sweep(d *dataset.Dataset, cross bool) {
	fmt.Println(d.Stats())
	all := simjoin.Join(d.Table, simjoin.Options{Threshold: 0.1, CrossSourceOnly: cross})
	for _, tau := range []float64{0.5, 0.4, 0.3, 0.2, 0.1} {
		kept := simjoin.FilterThreshold(all, tau)
		matches := 0
		for _, sp := range kept {
			if d.Matches.Has(sp.Pair.A, sp.Pair.B) {
				matches++
			}
		}
		fmt.Printf("  thr %.1f: total %7d  matches %4d  recall %.1f%%\n",
			tau, len(kept), matches, 100*float64(matches)/float64(d.Matches.Len()))
	}
}

func timeGens(d *dataset.Dataset, cross bool) {
	all := simjoin.Join(d.Table, simjoin.Options{Threshold: 0.1, CrossSourceOnly: cross})
	pairs := simjoin.Pairs(all)
	gens := []hitgen.ClusterGenerator{
		hitgen.Random{Seed: 1}, hitgen.DFS{}, hitgen.BFS{},
		hitgen.Approx{}, hitgen.TwoTiered{},
	}
	for _, g := range gens {
		t0 := time.Now()
		hits, err := g.Generate(pairs, 10)
		if err != nil {
			fmt.Println(g.Name(), err)
			continue
		}
		fmt.Printf("  %-16s %6d HITs in %v\n", g.Name(), len(hits), time.Since(t0).Round(time.Millisecond))
	}
}

func main() {
	rest := dataset.Restaurant(1)
	prod := dataset.Product(1)
	sweep(rest, false)
	sweep(prod, true)
	fmt.Println("generator timing, Restaurant @0.1:")
	timeGens(rest, false)
	fmt.Println("generator timing, Product @0.1:")
	timeGens(prod, true)
}
