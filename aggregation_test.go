package crowder

import (
	"strings"
	"testing"

	"github.com/crowder/crowder/internal/dataset"
)

// aggTestWorkload is a mid-size crowdable dataset shared by the
// aggregation-mode tests.
func aggTestWorkload(t *testing.T) (*dataset.Dataset, []Pair) {
	t.Helper()
	d := dataset.RestaurantN(6, 300, 60)
	var oracle []Pair
	for _, p := range d.Matches.Slice() {
		oracle = append(oracle, Pair{A: int(p.A), B: int(p.B)})
	}
	return d, oracle
}

func buildTable(d *dataset.Dataset) *Table {
	tab := NewTable(d.Table.Schema...)
	for i := range d.Table.Records {
		tab.Append(d.Table.Records[i].Values...)
	}
	return tab
}

// The default aggregation path is pinned: a zero Options and an explicit
// AggregationDawidSkene must produce bit-identical results — the enum's
// zero value IS the historical behavior.
func TestAggregationDefaultIsDawidSkene(t *testing.T) {
	if AggregationDawidSkene != 0 {
		t.Fatal("AggregationDawidSkene must be the zero value: the default path is pinned bit-identical across PRs")
	}
	d, oracle := aggTestWorkload(t)
	base, err := Resolve(buildTable(d), Options{Threshold: 0.4, Oracle: oracle, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := Resolve(buildTable(d), Options{
		Threshold: 0.4, Oracle: oracle, Seed: 11, Aggregation: AggregationDawidSkene,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Matches) != len(explicit.Matches) {
		t.Fatalf("explicit default aggregation changed the match count: %d vs %d", len(explicit.Matches), len(base.Matches))
	}
	for i := range base.Matches {
		if base.Matches[i] != explicit.Matches[i] {
			t.Fatalf("match %d differs between zero-value and explicit default aggregation", i)
		}
	}
}

// Every aggregation mode must be bit-identical at every parallelism
// level, with and without Transitivity — the engine's determinism
// guarantee does not depend on which aggregator runs. CI runs this
// race-enabled.
func TestAggregationParallelismInvariance(t *testing.T) {
	d, oracle := aggTestWorkload(t)
	for _, mode := range []AggregationMode{AggregationDawidSkene, AggregationMajorityVote, AggregationDawidSkeneMAP} {
		for _, trans := range []TransitivityMode{TransitivityOff, TransitivityOn} {
			opts := Options{
				Threshold: 0.4, HITType: PairHITs, ClusterSize: 5,
				Oracle: oracle, Seed: 11,
				Aggregation: mode, Transitivity: trans, Parallelism: 1,
			}
			base, err := Resolve(buildTable(d), opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, par := range []int{2, 8} {
				opts.Parallelism = par
				got, err := Resolve(buildTable(d), opts)
				if err != nil {
					t.Fatal(err)
				}
				if got.HITs != base.HITs || got.CostDollars != base.CostDollars {
					t.Fatalf("%v/transitivity=%d: parallelism %d changed the workflow footprint", mode, trans, par)
				}
				if len(got.Matches) != len(base.Matches) {
					t.Fatalf("%v/transitivity=%d: parallelism %d gave %d matches, want %d",
						mode, trans, par, len(got.Matches), len(base.Matches))
				}
				for i := range base.Matches {
					if got.Matches[i] != base.Matches[i] {
						t.Fatalf("%v/transitivity=%d: parallelism %d match %d differs: %v vs %v",
							mode, trans, par, i, got.Matches[i], base.Matches[i])
					}
				}
			}
		}
	}
}

// A k-batch incremental session under the MAP aggregator reproduces the
// from-scratch MAP resolution bit for bit: the aggregator slots into
// the delta path's cached∪fresh re-aggregation without breaking its
// order-invariance contract.
func TestAggregationMAPDeltaEqualsScratch(t *testing.T) {
	d, oracle := aggTestWorkload(t)
	opts := Options{
		Threshold: 0.4, HITType: PairHITs, ClusterSize: 5,
		Oracle: oracle, Seed: 11, Aggregation: AggregationDawidSkeneMAP,
	}
	full, err := Resolve(buildTable(d), opts)
	if err != nil {
		t.Fatal(err)
	}
	rv, err := NewResolver(NewTable(d.Table.Schema...), opts)
	if err != nil {
		t.Fatal(err)
	}
	var last *Result
	const batches = 3
	size := (d.Table.Len() + batches - 1) / batches
	for lo := 0; lo < d.Table.Len(); lo += size {
		hi := lo + size
		if hi > d.Table.Len() {
			hi = d.Table.Len()
		}
		for i := lo; i < hi; i++ {
			rv.Append(d.Table.Records[i].Values...)
		}
		if last, err = rv.ResolveDelta(); err != nil {
			t.Fatal(err)
		}
	}
	if len(full.Matches) != len(last.Matches) {
		t.Fatalf("k-batch MAP session has %d matches; from-scratch %d", len(last.Matches), len(full.Matches))
	}
	for i := range full.Matches {
		if full.Matches[i] != last.Matches[i] {
			t.Fatalf("k-batch MAP match %d differs: %v vs %v", i, last.Matches[i], full.Matches[i])
		}
	}
}

// Majority-vote aggregation end to end: confidences are vote fractions,
// so every value is k/n for n ≤ assignments — and the mode actually
// reaches the output (no silent fallback to EM).
func TestAggregationMajorityVoteEndToEnd(t *testing.T) {
	tab, oracle := paperTable()
	res, err := Resolve(tab, Options{
		Threshold: 0.3, HITType: PairHITs, ClusterSize: 4, Oracle: oracle, Seed: 7,
		Aggregation: AggregationMajorityVote, SpammerRate: NoSpammers,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 {
		t.Fatal("majority-vote resolution produced no matches")
	}
	for _, m := range res.Matches {
		// 3 assignments ⇒ fractions k/3.
		k := m.Confidence * 3
		if diff := k - float64(int(k+0.5)); diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("majority-vote confidence %v is not a thirds fraction", m.Confidence)
		}
	}
	truth := map[Pair]bool{}
	for _, p := range oracle {
		truth[p] = true
	}
	for _, m := range res.Accepted() {
		if !truth[m.Pair] {
			t.Errorf("clean-pool majority vote accepted non-match %v", m.Pair)
		}
	}
}

// The MAP aggregator interacts with transitive deduction: deduced
// confidences are min-posterior along the proof, so they must stay
// consistent with the MAP posteriors of their supporting pairs.
func TestAggregationMAPWithTransitivity(t *testing.T) {
	d, oracle := aggTestWorkload(t)
	opts := Options{
		Threshold: 0.4, HITType: PairHITs, ClusterSize: 5,
		Oracle: oracle, Seed: 11,
		Aggregation: AggregationDawidSkeneMAP, Transitivity: TransitivityOn,
		SpammerRate: NoSpammers,
	}
	res, err := Resolve(buildTable(d), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeducedPairs == 0 {
		t.Fatal("transitive MAP resolution deduced nothing; the interaction is untested")
	}
	truth := map[Pair]bool{}
	for _, p := range oracle {
		truth[p] = true
	}
	for _, m := range res.Accepted() {
		if !truth[m.Pair] {
			t.Errorf("clean-pool transitive MAP resolution accepted non-match %v (confidence %v)", m.Pair, m.Confidence)
		}
	}
}

func TestAggregationModeStringParseRoundTrip(t *testing.T) {
	for _, m := range []AggregationMode{AggregationDawidSkene, AggregationMajorityVote, AggregationDawidSkeneMAP} {
		got, err := ParseAggregationMode(m.String())
		if err != nil {
			t.Fatalf("ParseAggregationMode(%q): %v", m, err)
		}
		if got != m {
			t.Errorf("ParseAggregationMode(%q) = %v; want %v", m.String(), got, m)
		}
	}
	if m, err := ParseAggregationMode(""); err != nil || m != AggregationDawidSkene {
		t.Errorf("ParseAggregationMode(\"\") = %v, %v; want the default", m, err)
	}
	if _, err := ParseAggregationMode("em"); err == nil || !strings.Contains(err.Error(), `"em"`) {
		t.Errorf("unknown aggregation name should fail naming the value; got %v", err)
	}
	if s := AggregationMode(9).String(); !strings.Contains(s, "9") {
		t.Errorf("out-of-range AggregationMode.String() = %q; should carry the raw value", s)
	}
}

// WorkerStats: after a resolution the session reports each worker's
// accuracy with the coverage to read it; machine-only sessions (no crowd
// answers) report nothing.
func TestResolverWorkerStats(t *testing.T) {
	d, oracle := aggTestWorkload(t)
	rv, err := NewResolver(buildTable(d), Options{Threshold: 0.4, HITType: PairHITs, Oracle: oracle, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if got := rv.WorkerStats(); got != nil {
		t.Fatalf("stats before any delta = %v; want nil", got)
	}
	if _, err := rv.ResolveDelta(); err != nil {
		t.Fatal(err)
	}
	stats := rv.WorkerStats()
	if len(stats) == 0 {
		t.Fatal("no worker stats after a resolution")
	}
	for i, ws := range stats {
		if i > 0 && stats[i-1].Worker >= ws.Worker {
			t.Fatal("worker stats are not sorted by worker ID")
		}
		if ws.Accuracy < 0 || ws.Accuracy > 1 {
			t.Errorf("worker %d accuracy %v outside [0,1]", ws.Worker, ws.Accuracy)
		}
		if ws.Answers <= 0 {
			t.Errorf("worker %d reported with %d answers", ws.Worker, ws.Answers)
		}
		if ws.MatchesSeen+ws.NonMatchesSeen != ws.Answers {
			t.Errorf("worker %d coverage does not add up: %+v", ws.Worker, ws)
		}
		want := 0
		if ws.MatchesSeen > 0 {
			want++
		}
		if ws.NonMatchesSeen > 0 {
			want++
		}
		if ws.ClassesSeen != want {
			t.Errorf("worker %d ClassesSeen = %d; coverage says %d", ws.Worker, ws.ClassesSeen, want)
		}
	}

	mo, err := NewResolver(buildTable(d), Options{Threshold: 0.4, MachineOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mo.ResolveDelta(); err != nil {
		t.Fatal(err)
	}
	if got := mo.WorkerStats(); got != nil {
		t.Errorf("machine-only session reports worker stats: %v", got)
	}
}
