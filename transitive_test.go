package crowder

import (
	"testing"

	"github.com/crowder/crowder/internal/dataset"
	"github.com/crowder/crowder/internal/record"
	"github.com/crowder/crowder/internal/verdicts"
)

// productDupDataset builds the heavy-transitivity workload (the Product
// catalog with injected token-swap duplicates, the paper's Figure 15(b)
// dataset) in the public API's types.
func productDupDataset() ([][]string, []string, []Pair, record.PairSet) {
	d := dataset.ProductDup(2, dataset.Product(1))
	rows := make([][]string, d.Table.Len())
	for i := range d.Table.Records {
		row := make([]string, len(d.Table.Records[i].Values))
		copy(row, d.Table.Records[i].Values)
		rows[i] = row
	}
	var oracle []Pair
	for _, p := range d.Matches.Slice() {
		oracle = append(oracle, Pair{A: int(p.A), B: int(p.B)})
	}
	return rows, d.Table.Schema, oracle, d.Matches
}

func f1Against(truth record.PairSet, res *Result) float64 {
	tp, fp := 0, 0
	for _, m := range res.Accepted() {
		if truth.Has(record.ID(m.Pair.A), record.ID(m.Pair.B)) {
			tp++
		} else {
			fp++
		}
	}
	fn := truth.Len() - tp
	if tp == 0 {
		return 0
	}
	p := float64(tp) / float64(tp+fp)
	r := float64(tp) / float64(tp+fn)
	return 2 * p * r / (p + r)
}

// Tentpole acceptance: with Transitivity on, the adaptive scheduler
// posts strictly fewer HITs than the one-shot batching at equal-or-
// better F1, reports the savings, and never re-asks a deduced pair.
func TestTransitiveFewerHITsEqualOrBetterF1(t *testing.T) {
	rows, schema, oracle, truth := productDupDataset()
	base := Options{
		Threshold: 0.5, HITType: PairHITs, ClusterSize: 10,
		Oracle: oracle, Seed: 1,
	}

	build := func() *Table {
		tab := NewTable(schema...)
		for _, r := range rows {
			tab.Append(r...)
		}
		return tab
	}

	off, err := Resolve(build(), base)
	if err != nil {
		t.Fatal(err)
	}
	onOpts := base
	onOpts.Transitivity = TransitivityOn
	on, err := Resolve(build(), onOpts)
	if err != nil {
		t.Fatal(err)
	}

	if on.HITs >= off.HITs {
		t.Errorf("transitivity posted %d HITs; one-shot posted %d — no savings", on.HITs, off.HITs)
	}
	if on.DeducedPairs == 0 {
		t.Error("no pairs deduced on the heavy-transitivity workload")
	}
	if on.HITsSaved != off.HITs-on.HITs {
		t.Errorf("HITsSaved = %d; want baseline − posted = %d", on.HITsSaved, off.HITs-on.HITs)
	}
	if on.CostDollars >= off.CostDollars {
		t.Errorf("transitive cost $%v not below one-shot $%v", on.CostDollars, off.CostDollars)
	}
	// Every candidate is still judged — asked or deduced.
	if on.Candidates != off.Candidates {
		t.Errorf("transitive judged %d candidates; one-shot judged %d", on.Candidates, off.Candidates)
	}
	offF1, onF1 := f1Against(truth, off), f1Against(truth, on)
	if onF1 < offF1 {
		t.Errorf("transitive F1 %.4f below one-shot %.4f", onF1, offF1)
	}
	if off.DeducedPairs != 0 || off.HITsSaved != 0 || off.RetractedHITs != 0 {
		t.Errorf("one-shot run reports transitive work: %+v", off)
	}
}

// With Transitivity off the resolution never touches the deduction
// machinery: zero-value Options select TransitivityOff, and the off-mode
// result carries no transitive accounting. (Bit-identity of off-mode
// across parallelism levels is asserted by
// TestTransitiveParallelismInvariance and the pre-existing
// TestResolveParallelismInvariance.)
func TestTransitivityOffIsDefault(t *testing.T) {
	if TransitivityOff != 0 {
		t.Fatal("TransitivityOff must be the zero value")
	}
	tab, oracle := paperTable()
	res, err := Resolve(tab, Options{Threshold: 0.3, Oracle: oracle, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeducedPairs != 0 || res.HITsSaved != 0 || res.RetractedHITs != 0 {
		t.Errorf("default resolve reports transitive work: deduced=%d saved=%d retracted=%d",
			res.DeducedPairs, res.HITsSaved, res.RetractedHITs)
	}
}

// Acceptance: transitive resolution is bit-identical at every
// parallelism level, off and on — the adaptive rounds consume the
// simulator's virtual-clock stream, which is deterministic regardless of
// how many goroutines simulate assignments.
func TestTransitiveParallelismInvariance(t *testing.T) {
	rows, schema, oracle := resolverDataset(11, 400, 80)
	for _, mode := range []TransitivityMode{TransitivityOff, TransitivityOn} {
		var ref *Result
		for _, par := range []int{1, 2, 8} {
			tab := NewTable(schema...)
			for _, r := range rows {
				tab.Append(r...)
			}
			res, err := Resolve(tab, Options{
				Threshold: 0.4, HITType: PairHITs, ClusterSize: 10,
				Oracle: oracle, Seed: 1, Parallelism: par, Transitivity: mode,
			})
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = res
				continue
			}
			assertSameMatches(t, "matches", ref.Matches, res.Matches)
			if res.HITs != ref.HITs || res.DeducedPairs != ref.DeducedPairs ||
				res.RetractedHITs != ref.RetractedHITs || res.CostDollars != ref.CostDollars {
				t.Errorf("mode %d parallelism %d: work accounting differs: %+v vs %+v", mode, par, res, ref)
			}
		}
	}
}

// Acceptance: k-batch ResolveDelta with transitivity equals from-scratch
// Resolve with transitivity. On the heavy-transitivity workload with a
// clean pool the Matches are bit-identical; the judged pair set is equal
// by construction (every candidate ends asked or deduced either way).
func TestTransitiveDeltaEqualsFromScratch(t *testing.T) {
	rows, schema, oracle, _ := productDupDataset()
	opts := Options{
		Threshold: 0.5, HITType: PairHITs, ClusterSize: 10,
		Oracle: oracle, Seed: 1, Transitivity: TransitivityOn,
		SpammerRate: NoSpammers,
	}

	union := NewTable(schema...)
	for _, r := range rows {
		union.Append(r...)
	}
	full, err := Resolve(union, opts)
	if err != nil {
		t.Fatal(err)
	}

	for _, batches := range []int{2, 4} {
		rv, err := NewResolver(NewTable(schema...), opts)
		if err != nil {
			t.Fatal(err)
		}
		size := (len(rows) + batches - 1) / batches
		var last *Result
		for lo := 0; lo < len(rows); lo += size {
			hi := lo + size
			if hi > len(rows) {
				hi = len(rows)
			}
			rv.AppendBatch(rows[lo:hi]...)
			if last, err = rv.ResolveDelta(); err != nil {
				t.Fatal(err)
			}
		}
		assertSameMatches(t, "k-batch vs scratch", full.Matches, last.Matches)
		if last.Candidates != full.Candidates {
			t.Errorf("%d-batch judged %d candidates; scratch judged %d", batches, last.Candidates, full.Candidates)
		}
	}
}

// A delta whose pairs are all implied by cached verdicts issues no HITs
// at all: deduction carries across ResolveDelta calls, and deduced
// verdicts persist with provenance so they are never re-asked.
func TestTransitiveDeltaDeducesFromCache(t *testing.T) {
	// Three near-identical records resolved in full, then a fourth copy
	// appended: its three candidate pairs are implied by the existing
	// cluster (two spanning asks suffice; transitivity fills the rest).
	opts := Options{
		Threshold: 0.3, HITType: PairHITs, ClusterSize: 1, Assignments: 3,
		Oracle: []Pair{{0, 1}, {0, 2}, {1, 2}, {0, 3}, {1, 3}, {2, 3}},
		// Seed 1 yields unanimous replicas for every asked pair (a clean
		// pool still has a small residual slip rate; a slip would simply
		// demote a deduction to an ask, which is not what this test is
		// about).
		Seed: 1, Transitivity: TransitivityOn, SpammerRate: NoSpammers,
	}
	rv, err := NewResolver(NewTable("name"), opts)
	if err != nil {
		t.Fatal(err)
	}
	// Token permutations of one record: similarity 1, so the simulated
	// workers judge them trivially (difficulty 0) and unanimously —
	// exactly the strong evidence deduction proofs require.
	rv.AppendBatch(
		[]string{"apple ipad two 16gb wifi white"},
		[]string{"apple ipad two 16gb white wifi"},
		[]string{"ipad two 16gb wifi white apple"},
	)
	first, err := rv.ResolveDelta()
	if err != nil {
		t.Fatal(err)
	}
	// ClusterSize 1 ⇒ one pair per HIT: the 3-cycle needs only its
	// spanning edges asked; the third pair is deduced.
	if first.HITs != 2 || first.DeducedPairs != 1 {
		t.Fatalf("first delta: HITs=%d deduced=%d; want 2 asked + 1 deduced", first.HITs, first.DeducedPairs)
	}

	rv.Append("white wifi apple ipad two 16gb")
	second, err := rv.ResolveDelta()
	if err != nil {
		t.Fatal(err)
	}
	// The new record pairs with all three cluster members: one ask links
	// it into the cluster, the other two pairs are deduced.
	if second.NewCandidates != 3 {
		t.Fatalf("second delta found %d new candidates; want 3", second.NewCandidates)
	}
	if second.HITs != 1 || second.DeducedPairs != 2 {
		t.Errorf("second delta: HITs=%d deduced=%d; want 1 asked + 2 deduced", second.HITs, second.DeducedPairs)
	}
	// All six pairs are judged and accepted; deduced ones carry proof.
	if rv.JudgedPairs() != 6 {
		t.Errorf("JudgedPairs = %d; want 6", rv.JudgedPairs())
	}
	for _, p := range opts.Oracle {
		conf, ok := rv.Verdict(p)
		if !ok || conf < 0.5 {
			t.Errorf("pair %v: conf=%v ok=%v; want accepted", p, conf, ok)
		}
	}
	deduced := 0
	for _, p := range rv.cache.Pairs() {
		e := rv.cache.Get(p)
		if e.Provenance == verdicts.Deduced {
			deduced++
			if e.Deduction == nil || len(e.Deduction.Path) == 0 {
				t.Errorf("deduced entry %v has no proof", p)
			}
		}
	}
	if deduced != 3 {
		t.Errorf("cache holds %d deduced entries; want 3", deduced)
	}
}

// Cluster-based HITs with transitivity: a one-shot resolution posts the
// identical one-shot packing (cluster HITs already close transitivity
// within each group, and fragmenting the packing would cost HITs), so
// the result matches the off-mode run exactly on a workload where
// nothing is retracted mid-flight.
func TestTransitiveClusterOneShotParity(t *testing.T) {
	rows, schema, oracle := resolverDataset(5, 300, 60)
	base := Options{
		Threshold: 0.4, HITType: ClusterHITs, ClusterSize: 10,
		Oracle: oracle, Seed: 1,
	}
	build := func() *Table {
		tab := NewTable(schema...)
		for _, r := range rows {
			tab.Append(r...)
		}
		return tab
	}
	off, err := Resolve(build(), base)
	if err != nil {
		t.Fatal(err)
	}
	onOpts := base
	onOpts.Transitivity = TransitivityOn
	on, err := Resolve(build(), onOpts)
	if err != nil {
		t.Fatal(err)
	}
	if on.HITs != off.HITs {
		t.Errorf("cluster one-shot: %d HITs on vs %d off; want identical packing", on.HITs, off.HITs)
	}
	if on.RetractedHITs == 0 {
		assertSameMatches(t, "cluster parity", off.Matches, on.Matches)
	}
}

// EstimateCost under transitivity reports the one-shot batching: the
// savings depend on crowd answers no estimate can know, so the estimate
// stays the workload's upper bound.
func TestTransitiveEstimateIsOneShot(t *testing.T) {
	tab, oracle := paperTable()
	off, err := EstimateCost(tab, Options{Threshold: 0.3, Oracle: oracle, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tab2, _ := paperTable()
	on, err := EstimateCost(tab2, Options{Threshold: 0.3, Oracle: oracle, Seed: 1, Transitivity: TransitivityOn})
	if err != nil {
		t.Fatal(err)
	}
	if *on != *off {
		t.Errorf("transitive estimate %+v differs from one-shot %+v", on, off)
	}
}
