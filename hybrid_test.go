package crowder

import (
	"math/rand"
	"testing"

	"github.com/crowder/crowder/internal/record"
	"github.com/crowder/crowder/internal/verdicts"
)

// shuffledResolverDataset is resolverDataset under a deterministic
// permutation, with the oracle pairs remapped and the ground truth
// returned as a PairSet. The unshuffled generator appends every
// duplicate after all the base records, so a batched session over it
// sees no matching pairs until the final batches — useless for a router
// that must learn both classes early. Shuffling spreads the matches
// uniformly over the session's lifetime.
func shuffledResolverDataset(seed int64, records, dups int) ([][]string, []string, []Pair, record.PairSet) {
	rows, schema, oracle := resolverDataset(seed, records, dups)
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(rows))
	shuffled := make([][]string, len(rows))
	where := make([]int, len(rows))
	for newPos, old := range perm {
		shuffled[newPos] = rows[old]
		where[old] = newPos
	}
	remapped := make([]Pair, len(oracle))
	truth := record.NewPairSet()
	for i, p := range oracle {
		remapped[i] = Pair{A: where[p.A], B: where[p.B]}
		truth.Add(record.ID(where[p.A]), record.ID(where[p.B]))
	}
	return shuffled, schema, remapped, truth
}

// hybridSession runs a k-batch incremental session over rows and returns
// the resolver plus the per-delta results.
func hybridSession(t *testing.T, schema []string, rows [][]string, batches int, opts Options) (*Resolver, []*Result) {
	t.Helper()
	rv, err := NewResolver(NewTable(schema...), opts)
	if err != nil {
		t.Fatal(err)
	}
	var results []*Result
	size := (len(rows) + batches - 1) / batches
	for lo := 0; lo < len(rows); lo += size {
		hi := min(lo+size, len(rows))
		rv.AppendBatch(rows[lo:hi]...)
		res, err := rv.ResolveDelta()
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	return rv, results
}

// drainAudits runs trailing empty deltas until the router's review pass
// goes quiet (bounded), appending each non-idle result to results. The
// returned slice ends with the session's converged state.
func drainAudits(t *testing.T, rv *Resolver, results []*Result) []*Result {
	t.Helper()
	for i := 0; i < 5; i++ {
		res, err := rv.ResolveDelta()
		if err != nil {
			t.Fatal(err)
		}
		if res.HITs == 0 {
			return results
		}
		results = append(results, res)
	}
	t.Fatal("audit passes did not converge within 5 empty deltas")
	return nil
}

func sumHITs(results []*Result) (hits, machine int) {
	for _, r := range results {
		hits += r.HITs
		machine += r.MachinePairs
	}
	return hits, machine
}

// Hybrid routing is strictly opt-in: HybridOff is the zero value, and a
// default resolution reports no machine work and an all-crowd estimate.
func TestHybridOffIsDefault(t *testing.T) {
	if HybridOff != 0 {
		t.Fatal("HybridOff must be the zero value")
	}
	tab, oracle := paperTable()
	res, err := Resolve(tab, Options{Threshold: 0.3, Oracle: oracle, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.MachinePairs != 0 {
		t.Errorf("default resolve reports %d machine pairs", res.MachinePairs)
	}
	tab2, _ := paperTable()
	est, err := EstimateCost(tab2, Options{Threshold: 0.3, Oracle: oracle, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if est.MachinePairs != 0 || est.CrowdPairs != est.Candidates {
		t.Errorf("default estimate splits %d machine / %d crowd of %d", est.MachinePairs, est.CrowdPairs, est.Candidates)
	}
}

// Tentpole acceptance at test scale: over a multi-delta session the
// learning router resolves a growing share of candidates by machine, so
// the session posts fewer HITs at equal-or-better F1 than the identical
// session without the router — and every candidate is still judged.
func TestHybridSessionFewerHITsEqualOrBetterF1(t *testing.T) {
	rows, schema, oracle, truth := productDupDataset()
	base := Options{
		Threshold: 0.5, HITType: PairHITs, ClusterSize: 10,
		Oracle: oracle, Seed: 1, SpammerRate: NoSpammers,
		Transitivity: TransitivityOn,
	}
	const batches = 6

	rvOff, offResults := hybridSession(t, schema, rows, batches, base)
	onOpts := base
	onOpts.Hybrid = HybridOn
	rvOn, onResults := hybridSession(t, schema, rows, batches, onOpts)

	// The hybrid session ends with its self-audit passes: trailing empty
	// deltas in which the final model reviews its own machine verdicts
	// and re-asks any it no longer endorses. Their HITs are part of the
	// session's crowd cost.
	onResults = drainAudits(t, rvOn, onResults)

	offHITs, offMachine := sumHITs(offResults)
	onHITs, onMachine := sumHITs(onResults)
	if offMachine != 0 {
		t.Fatalf("non-hybrid session reports %d machine pairs", offMachine)
	}
	if onMachine == 0 {
		t.Fatal("hybrid session resolved nothing by machine")
	}
	if onHITs >= offHITs {
		t.Errorf("hybrid posted %d HITs; baseline posted %d — no savings", onHITs, offHITs)
	}
	// The first delta routes nothing (no verdicts to train from yet);
	// the savings come from later deltas, so crowd cost falls over the
	// session's lifetime.
	if onResults[0].MachinePairs != 0 {
		t.Errorf("first delta machine-resolved %d pairs with an untrained learner", onResults[0].MachinePairs)
	}
	offF1 := f1Against(truth, offResults[len(offResults)-1])
	onF1 := f1Against(truth, onResults[len(onResults)-1])
	if onF1 < offF1 {
		t.Errorf("hybrid F1 %.4f below baseline %.4f", onF1, offF1)
	}

	// Every candidate is judged — asked, deduced or machine — and the
	// cache's provenance split matches the per-delta accounting.
	if rvOn.JudgedPairs() != rvOff.JudgedPairs() {
		t.Errorf("hybrid judged %d pairs; baseline judged %d", rvOn.JudgedPairs(), rvOff.JudgedPairs())
	}
	stats := rvOn.HybridStats()
	if !stats.Enabled || !stats.Ready {
		t.Errorf("HybridStats = %+v; want enabled and ready", stats)
	}
	// The cache can hold fewer machine entries than the deltas reported:
	// a reviewed verdict the crowd re-judged is upgraded to asked, and a
	// transitive deduction supersedes a machine call. It can never hold
	// more.
	if stats.MachinePairs == 0 || stats.MachinePairs > onMachine {
		t.Errorf("cache holds %d machine pairs; deltas reported %d", stats.MachinePairs, onMachine)
	}
	// Band invariants: the accept bar is positive and the crowd band is
	// at least the safety gap wide. Lo may legitimately sit above zero —
	// rejection is quantile logic over the training positives, not sign
	// logic.
	if stats.BandHi <= 0 || stats.BandLo >= stats.BandHi {
		t.Errorf("band [%v, %v] is not a positive-width band under a positive accept bar", stats.BandLo, stats.BandHi)
	}
	if stats.SpentDollars <= 0 {
		t.Errorf("SpentDollars = %v; want the session's crowd spend", stats.SpentDollars)
	}

	// Post-audit the session is settled: a further empty delta asks
	// nothing, routes nothing, and disputes nothing.
	again, err := rvOn.ResolveDelta()
	if err != nil {
		t.Fatal(err)
	}
	if again.HITs != 0 || again.MachinePairs != 0 || again.NewCandidates != 0 {
		t.Errorf("idle delta did work: %+v", again)
	}
}

// Satellite pinning: the hybrid session — training, routing, machine
// verdicts, matches — is bit-identical at every parallelism level and
// shard count. Map-order nondeterminism anywhere in the train/route path
// would break this across reruns and configurations.
func TestHybridDeterminismAcrossParallelismAndShards(t *testing.T) {
	rows, schema, oracle, _ := shuffledResolverDataset(13, 400, 80)
	var ref *Resolver
	var refResults []*Result
	for _, shards := range []int{0, 4} {
		for _, par := range []int{1, 2, 8} {
			opts := Options{
				Threshold: 0.4, HITType: PairHITs, ClusterSize: 10,
				Oracle: oracle, Seed: 1, SpammerRate: NoSpammers,
				Hybrid: HybridOn, Parallelism: par, Shards: shards,
			}
			rv, results := hybridSession(t, schema, rows, 4, opts)
			if ref == nil {
				ref, refResults = rv, results
				if _, machine := sumHITs(results); machine == 0 {
					t.Fatal("fixture session routed nothing by machine; the pinning is vacuous")
				}
				continue
			}
			for i, res := range results {
				want := refResults[i]
				if res.HITs != want.HITs || res.MachinePairs != want.MachinePairs ||
					res.CostDollars != want.CostDollars || res.NewCandidates != want.NewCandidates {
					t.Errorf("shards=%d par=%d delta %d accounting differs: got HITs=%d machine=%d, want HITs=%d machine=%d",
						shards, par, i, res.HITs, res.MachinePairs, want.HITs, want.MachinePairs)
				}
			}
			assertSameMatches(t, "hybrid matches", refResults[len(refResults)-1].Matches, results[len(results)-1].Matches)
			a, b := ref.HybridStats(), rv.HybridStats()
			if a != b {
				t.Errorf("shards/par variant diverged: %+v vs %+v", a, b)
			}
		}
	}
}

// Satellite: estimates are hybrid-aware. A fresh session projects the
// all-crowd plan (the learner has nothing to train from — exactly what
// the one-shot run will do); a live trained session's EstimateDelta
// projects the machine/crowd split the next delta actually pays for.
func TestHybridEstimates(t *testing.T) {
	rows, schema, oracle, _ := shuffledResolverDataset(17, 400, 80)
	base := Options{
		Threshold: 0.4, HITType: PairHITs, ClusterSize: 10,
		Oracle: oracle, Seed: 1, SpammerRate: NoSpammers,
	}
	build := func() *Table {
		tab := NewTable(schema...)
		for _, r := range rows {
			tab.Append(r...)
		}
		return tab
	}

	// Table-driven: fresh-session estimates route nothing regardless of
	// mode, and hybrid-off ≡ hybrid-on on a fresh table.
	cases := []struct {
		name   string
		mutate func(*Options)
	}{
		{"default", func(o *Options) {}},
		{"hybrid-on", func(o *Options) { o.Hybrid = HybridOn }},
		{"hybrid-on-budgeted", func(o *Options) { o.Hybrid = HybridOn; o.HybridBudgetDollars = 5 }},
	}
	var freshRef *Estimate
	for _, c := range cases {
		opts := base
		c.mutate(&opts)
		est, err := EstimateCost(build(), opts)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if est.MachinePairs != 0 {
			t.Errorf("%s: fresh estimate machine-resolves %d pairs", c.name, est.MachinePairs)
		}
		if est.CrowdPairs != est.Candidates {
			t.Errorf("%s: CrowdPairs %d ≠ Candidates %d", c.name, est.CrowdPairs, est.Candidates)
		}
		if freshRef == nil {
			freshRef = est
		} else if *est != *freshRef {
			t.Errorf("%s: fresh estimate %+v differs from default %+v", c.name, est, freshRef)
		}
	}

	// Live session: train on the first half, then estimate the second.
	opts := base
	opts.Hybrid = HybridOn
	rv, err := NewResolver(NewTable(schema...), opts)
	if err != nil {
		t.Fatal(err)
	}
	half := len(rows) / 2
	rv.AppendBatch(rows[:half]...)
	if _, err := rv.ResolveDelta(); err != nil {
		t.Fatal(err)
	}
	if !rv.HybridStats().Ready {
		t.Fatal("learner not ready after the first delta; fixture too small")
	}
	rv.AppendBatch(rows[half:]...)
	est, err := rv.EstimateDelta()
	if err != nil {
		t.Fatal(err)
	}
	if est.MachinePairs == 0 {
		t.Fatal("trained session's estimate routes nothing by machine")
	}
	if est.CrowdPairs != est.Candidates-est.MachinePairs {
		t.Errorf("estimate split %d+%d ≠ %d candidates", est.MachinePairs, est.CrowdPairs, est.Candidates)
	}

	// The estimate is the plan the next delta executes: identical split,
	// HIT count and spend.
	res, err := rv.ResolveDelta()
	if err != nil {
		t.Fatal(err)
	}
	if res.MachinePairs != est.MachinePairs || res.HITs != est.HITs || res.CostDollars != est.CostDollars {
		t.Errorf("delta (machine=%d hits=%d $%v) diverged from estimate (machine=%d hits=%d $%v)",
			res.MachinePairs, res.HITs, res.CostDollars, est.MachinePairs, est.HITs, est.CostDollars)
	}
	if res.NewCandidates != est.Candidates {
		t.Errorf("delta resolved %d new candidates; estimate projected %d", res.NewCandidates, est.Candidates)
	}
}

// A session budget squeezes the uncertainty band: under a tight
// HybridBudgetDollars the router escalates its risk (capped at the
// quality floor) and resolves more by machine, so the session spends
// less crowd money than its unbudgeted twin.
func TestHybridBudgetWidensMachineBand(t *testing.T) {
	rows, schema, oracle, _ := shuffledResolverDataset(13, 400, 80)
	base := Options{
		Threshold: 0.4, HITType: PairHITs, ClusterSize: 10,
		Oracle: oracle, Seed: 1, SpammerRate: NoSpammers, Hybrid: HybridOn,
	}
	_, freeResults := hybridSession(t, schema, rows, 4, base)

	tight := base
	tight.HybridBudgetDollars = 0.30
	rvTight, tightResults := hybridSession(t, schema, rows, 4, tight)

	freeHITs, freeMachine := sumHITs(freeResults)
	tightHITs, tightMachine := sumHITs(tightResults)
	if tightMachine <= freeMachine {
		t.Errorf("tight budget machine-resolved %d pairs; unbudgeted resolved %d — the ladder never engaged", tightMachine, freeMachine)
	}
	if tightHITs >= freeHITs {
		t.Errorf("tight budget posted %d HITs; unbudgeted posted %d", tightHITs, freeHITs)
	}
	stats := rvTight.HybridStats()
	if stats.Risk <= base.HybridRisk {
		t.Errorf("budgeted session's effective risk %v never escalated", stats.Risk)
	}
	if stats.BudgetDollars != 0.30 {
		t.Errorf("BudgetDollars = %v; want 0.30", stats.BudgetDollars)
	}
}

// Machine verdicts, the learner's training source, and the spend counter
// all survive a crash: a restored session reports identical hybrid stats
// and continues bit-identically to a twin that never crashed.
func TestHybridPersistenceRoundTrip(t *testing.T) {
	rows, schema, oracle, _ := shuffledResolverDataset(13, 300, 60)
	mkOpts := func(dir string) Options {
		return Options{
			Threshold: 0.4, HITType: PairHITs, ClusterSize: 10,
			Oracle: oracle, Seed: 1, SpammerRate: NoSpammers,
			Hybrid: HybridOn, Store: openTestStore(t, dir),
		}
	}
	const batches = 4
	batch := func(rv *Resolver, i int) *Result {
		t.Helper()
		size := (len(rows) + batches - 1) / batches
		lo := i * size
		rv.AppendBatch(rows[lo:min(lo+size, len(rows))]...)
		res, err := rv.ResolveDelta()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// Twin A: four deltas, no crash.
	dirA := t.TempDir()
	optsA := mkOpts(dirA)
	rvA, err := NewResolver(NewTable(schema...), optsA)
	if err != nil {
		t.Fatal(err)
	}
	var lastA *Result
	for i := 0; i < batches; i++ {
		lastA = batch(rvA, i)
	}

	// Twin B: crash after delta three, recover, run the final delta.
	dirB := t.TempDir()
	optsB := mkOpts(dirB)
	rvB, err := NewResolver(NewTable(schema...), optsB)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < batches-1; i++ {
		batch(rvB, i)
	}
	statsBefore := rvB.HybridStats()
	if statsBefore.MachinePairs == 0 {
		t.Fatal("no machine verdicts before the crash; the round trip is vacuous")
	}
	optsB.Store.(*FileStore).Close()

	fl, rec, err := OpenStore(dirB, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ropts := optsB
	ropts.Store = fl
	restored, err := RestoreResolver(rec, ropts)
	if err != nil {
		t.Fatal(err)
	}
	statsAfter := restored.HybridStats()
	if statsAfter.MachinePairs != statsBefore.MachinePairs ||
		statsAfter.DeducedPairs != statsBefore.DeducedPairs ||
		statsAfter.SpentDollars != statsBefore.SpentDollars {
		t.Errorf("recovered stats %+v differ from pre-crash %+v", statsAfter, statsBefore)
	}

	lastB := batch(restored, batches-1)
	assertSameMatches(t, "crashed vs uncrashed", lastA.Matches, lastB.Matches)
	if lastB.HITs != lastA.HITs || lastB.MachinePairs != lastA.MachinePairs {
		t.Errorf("post-recovery delta (HITs=%d machine=%d) diverged from uncrashed twin (HITs=%d machine=%d)",
			lastB.HITs, lastB.MachinePairs, lastA.HITs, lastA.MachinePairs)
	}
	if a, b := rvA.HybridStats(), restored.HybridStats(); a != b {
		t.Errorf("final stats diverged: %+v vs %+v", a, b)
	}

	// Machine provenance survived the log — the restored cache knows
	// which pairs the model judged, so they are never re-asked.
	machine := 0
	for _, p := range restored.cache.Pairs() {
		if restored.cache.Get(p).Provenance == verdicts.Machine {
			machine++
		}
	}
	if want := restored.HybridStats().MachinePairs; machine != want {
		t.Errorf("restored cache holds %d machine entries; stats report %d", machine, want)
	}
}

// The budget search and the resolution consume the same learner state: a
// fresh session's learner is untrained either way, so PlanBudget's
// hybrid estimates equal the non-hybrid ones, and ResolveWithBudget
// threads its dollar budget into the router.
func TestResolveWithBudgetHybrid(t *testing.T) {
	rows, schema, oracle := resolverDataset(17, 300, 60)
	build := func() *Table {
		tab := NewTable(schema...)
		for _, r := range rows {
			tab.Append(r...)
		}
		return tab
	}
	base := BudgetOptions{
		Options: Options{
			HITType: PairHITs, ClusterSize: 10,
			Oracle: oracle, Seed: 1, SpammerRate: NoSpammers,
		},
		BudgetDollars: 20,
	}
	planOff, err := PlanBudget(build(), base)
	if err != nil {
		t.Fatal(err)
	}
	hyb := base
	hyb.Hybrid = HybridOn
	planOn, err := PlanBudget(build(), hyb)
	if err != nil {
		t.Fatal(err)
	}
	if planOn.Threshold != planOff.Threshold || len(planOn.Considered) != len(planOff.Considered) {
		t.Fatalf("hybrid budget search diverged: %+v vs %+v", planOn, planOff)
	}
	for i := range planOn.Considered {
		if planOn.Considered[i].Estimate != planOff.Considered[i].Estimate {
			t.Errorf("threshold %v: hybrid estimate %+v ≠ %+v",
				planOn.Considered[i].Threshold, planOn.Considered[i].Estimate, planOff.Considered[i].Estimate)
		}
	}
	res, plan, err := ResolveWithBudget(build(), hyb)
	if err != nil {
		t.Fatal(err)
	}
	if res.CostDollars > hyb.BudgetDollars {
		t.Errorf("spent $%v over the $%v budget", res.CostDollars, hyb.BudgetDollars)
	}
	// One-shot = one delta with an empty cache: the learner never
	// becomes ready, so nothing routes — exactly what the plan projected.
	if res.MachinePairs != 0 {
		t.Errorf("one-shot budgeted run machine-resolved %d pairs", res.MachinePairs)
	}
	if plan.Estimate.HITs != res.HITs {
		t.Errorf("plan projected %d HITs; run posted %d", plan.Estimate.HITs, res.HITs)
	}
}
